/**
 * @file
 * The fingerprint-keyed shared-object cache behind the jit engine.
 * A kernel is content-addressed by (design fingerprint, codegen
 * version, toolchain stamp); the cache has three tiers:
 *
 *  1. in-process: dlopened kernels are pinned in a registry and
 *     shared (shared_ptr) across simulators, sweeps, and serve
 *     requests; concurrent requests for the same key share ONE
 *     compile through a shared future (the DesignCache trick);
 *  2. on disk: <dir>/<key>.so published with the repo-standard
 *     unique-tmp + atomic-rename pattern plus a CRC32 sidecar, so
 *     crashed or concurrent writers can never publish a torn object
 *     and bit rot is detected before dlopen;
 *  3. cold: emit C++ (src/jit/Codegen.h), invoke the host toolchain,
 *     publish, dlopen.
 *
 * A stale toolchain (different compiler, flags, ABI, or codegen
 * version) changes the stamp, so old objects simply miss — stale
 * invalidation is structural, not a scan.
 *
 * Every failure path (no toolchain, failed compile, corrupt or
 * unloadable object) is graceful: acquire() returns null with a
 * reason and the caller falls back to the interpreter. Fault
 * injection sites (jit.source.write, jit.compile, jit.cache.bytes,
 * jit.dlopen) let the chaos tests drive each path deterministically.
 */

#ifndef ASH_JIT_KERNELCACHE_H
#define ASH_JIT_KERNELCACHE_H

#include <cstdint>
#include <memory>
#include <string>

#include "jit/KernelAbi.h"

namespace ash::rtl {
class Netlist;
} // namespace ash::rtl

namespace ash::jit {

/** How the jit engine locates and builds kernels. */
struct JitOptions
{
    /**
     * Shared-object cache directory. Empty = $ASH_JIT_CACHE_DIR,
     * falling back to ".ash-jit-cache".
     */
    std::string cacheDir;

    /**
     * C++ compiler driver. Empty = $ASH_JIT_CXX, falling back to the
     * compiler that built this binary (baked in at configure time),
     * then to "c++".
     */
    std::string compiler;

    /** Skip native compilation; always use the fallback interpreter
     *  ($ASH_JIT_FORCE_INTERP=1 sets this too). */
    bool forceInterp = false;

    /**
     * Wall-clock bound on a COLD compile, milliseconds; 0 (or
     * $ASH_JIT_COMPILE_BUDGET_MS) = unbounded. A compile that blows
     * the budget — or whose thread's guard::CancelToken fires, e.g.
     * the serve watchdog on a request deadline — is killed, and the
     * caller degrades to the interpreter with a warn. Deliberately
     * NOT part of the cache key: the budget changes whether a kernel
     * gets built, never what is built, and a timed-out compile is
     * not memoized as a failure so a later unhurried request can
     * still build the kernel.
     */
    uint64_t compileBudgetMs = 0;

    /** Resolve the env-var defaults described above. */
    static JitOptions resolved(const JitOptions &base);
};

/** A dlopened kernel, alive as long as anyone holds the pointer. */
class LoadedKernel
{
  public:
    LoadedKernel(void *dl, const AshJitKernel *info,
                 std::string soPath)
        : _dl(dl), _info(info), _soPath(std::move(soPath))
    {
    }
    ~LoadedKernel();

    LoadedKernel(const LoadedKernel &) = delete;
    LoadedKernel &operator=(const LoadedKernel &) = delete;

    const AshJitKernel &info() const { return *_info; }
    JitStepFn step() const { return _info->step; }
    const std::string &soPath() const { return _soPath; }

  private:
    void *_dl;
    const AshJitKernel *_info;
    std::string _soPath;
};

using KernelPtr = std::shared_ptr<const LoadedKernel>;

/** Process-wide cache; see file header. */
class KernelCache
{
  public:
    struct Snapshot
    {
        uint64_t memoryHits = 0;  ///< Served from the pinned registry.
        uint64_t diskHits = 0;    ///< dlopened an existing .so.
        uint64_t compiles = 0;    ///< Cold: emitted + compiled.
        uint64_t failures = 0;    ///< acquire() returned null.
        double lastCompileMs = 0; ///< Wall time of the newest compile.
        double lastLoadMs = 0;    ///< Wall time of the newest dlopen.
    };

    static KernelCache &instance();

    /**
     * The kernel for @p nl under @p opts, building it if needed.
     * Returns null (and sets @p whyNot when given) on any failure;
     * the caller is expected to fall back to the interpreter.
     * Thread-safe; concurrent callers for one key share one compile.
     */
    KernelPtr acquire(const rtl::Netlist &nl, const JitOptions &opts,
                      std::string *whyNot = nullptr);

    /** Cache key of @p nl under @p opts (tests, CI cache keys). */
    std::string keyFor(const rtl::Netlist &nl,
                       const JitOptions &opts) const;

    /**
     * Drop the in-process registry (pinned kernels stay alive
     * through outstanding shared_ptrs). Forces the next acquire()
     * down the disk path — for cache tests and load benchmarks.
     */
    void dropInMemory();

    Snapshot stats() const;

  private:
    KernelCache() = default;

    struct Impl;
    Impl &impl() const;
};

} // namespace ash::jit

#endif // ASH_JIT_KERNELCACHE_H
