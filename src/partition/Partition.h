/**
 * @file
 * Multilevel k-way graph partitioner — the from-scratch METIS
 * substitute used to map dataflow nodes to tiles (Sec 4.3.2). Minimizes
 * the weighted edge cut while keeping per-partition vertex weight
 * within a balance tolerance. Same algorithm family as METIS:
 * heavy-edge-matching coarsening, greedy region-growing initial
 * partition, and boundary refinement at every level.
 */

#ifndef ASH_PARTITION_PARTITION_H
#define ASH_PARTITION_PARTITION_H

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ash::partition {

/** Undirected weighted graph in adjacency-list form. */
struct Graph
{
    /** Per-vertex weight (e.g. instruction cost). */
    std::vector<uint32_t> vertexWeight;
    /** adj[v] = (neighbor, edge weight); must be symmetric. */
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adj;

    size_t numVertices() const { return vertexWeight.size(); }

    /** Add an undirected edge (accumulates weight on duplicates). */
    void addEdge(uint32_t u, uint32_t v, uint32_t w);
};

/** Partitioning options. */
struct PartitionOptions
{
    double imbalance = 0.10;   ///< Max partition weight over average.
    uint64_t seed = 1;
    unsigned refinePasses = 8;
};

/** Result: labels plus quality metrics. */
struct PartitionResult
{
    std::vector<uint32_t> label;     ///< Partition id per vertex.
    uint64_t cutWeight = 0;          ///< Sum of cut edge weights.
    uint64_t maxPartWeight = 0;
    uint64_t minPartWeight = 0;
};

/**
 * Partition @p graph into @p k parts. k == 1 returns all-zero labels.
 */
PartitionResult partitionGraph(const Graph &graph, uint32_t k,
                               const PartitionOptions &opts = {});

/** Recompute the cut weight of a labeling (for tests). */
uint64_t cutWeight(const Graph &graph,
                   const std::vector<uint32_t> &label);

} // namespace ash::partition

#endif // ASH_PARTITION_PARTITION_H
