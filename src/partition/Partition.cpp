#include "partition/Partition.h"

#include <algorithm>
#include <numeric>

#include "common/Logging.h"
#include "common/Random.h"

namespace ash::partition {

void
Graph::addEdge(uint32_t u, uint32_t v, uint32_t w)
{
    ASH_ASSERT(u < adj.size() && v < adj.size());
    if (u == v)
        return;
    for (auto &[n, ew] : adj[u]) {
        if (n == v) {
            ew += w;
            for (auto &[m, ew2] : adj[v]) {
                if (m == u) {
                    ew2 += w;
                    break;
                }
            }
            return;
        }
    }
    adj[u].emplace_back(v, w);
    adj[v].emplace_back(u, w);
}

uint64_t
cutWeight(const Graph &graph, const std::vector<uint32_t> &label)
{
    uint64_t cut = 0;
    for (size_t u = 0; u < graph.adj.size(); ++u) {
        for (const auto &[v, w] : graph.adj[u]) {
            if (u < v && label[u] != label[v])
                cut += w;
        }
    }
    return cut;
}

namespace {

/** One level of the multilevel hierarchy. */
struct Level
{
    Graph graph;
    std::vector<uint32_t> coarseOf;   ///< Fine vertex -> coarse vertex.
};

/** Heavy-edge matching coarsening; returns the coarser level. */
Level
coarsen(const Graph &g, Rng &rng)
{
    size_t n = g.numVertices();
    std::vector<uint32_t> match(n, ~0u);
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    // Shuffle visit order for robustness.
    for (size_t i = n; i > 1; --i)
        std::swap(order[i - 1], order[rng.below(i)]);

    for (uint32_t u : order) {
        if (match[u] != ~0u)
            continue;
        uint32_t best = ~0u;
        uint32_t best_w = 0;
        for (const auto &[v, w] : g.adj[u]) {
            if (match[v] == ~0u && w > best_w) {
                best = v;
                best_w = w;
            }
        }
        if (best != ~0u) {
            match[u] = best;
            match[best] = u;
        } else {
            match[u] = u;
        }
    }

    Level level;
    level.coarseOf.assign(n, ~0u);
    uint32_t next = 0;
    for (uint32_t u = 0; u < n; ++u) {
        if (level.coarseOf[u] != ~0u)
            continue;
        level.coarseOf[u] = next;
        if (match[u] != u)
            level.coarseOf[match[u]] = next;
        ++next;
    }

    level.graph.vertexWeight.assign(next, 0);
    level.graph.adj.resize(next);
    for (uint32_t u = 0; u < n; ++u)
        level.graph.vertexWeight[level.coarseOf[u]] +=
            g.vertexWeight[u];
    for (uint32_t u = 0; u < n; ++u) {
        for (const auto &[v, w] : g.adj[u]) {
            if (u < v)
                level.graph.addEdge(level.coarseOf[u],
                                    level.coarseOf[v], w);
        }
    }
    return level;
}

/**
 * Greedy region growing: seed k vertices, repeatedly assign the
 * unassigned vertex with the strongest connection to the lightest
 * growable partition.
 */
std::vector<uint32_t>
initialPartition(const Graph &g, uint32_t k, uint64_t max_weight,
                 Rng &rng)
{
    size_t n = g.numVertices();
    std::vector<uint32_t> label(n, ~0u);
    std::vector<uint64_t> weight(k, 0);

    // Round-robin greedy: iterate vertices in a BFS order from random
    // seeds, assigning each to the least-loaded partition among those
    // it has affinity to (or globally least-loaded when none).
    std::vector<uint32_t> order;
    order.reserve(n);
    std::vector<uint8_t> visited(n, 0);
    std::vector<uint32_t> queue;
    for (size_t start = 0; order.size() < n; ++start) {
        uint32_t s = static_cast<uint32_t>(rng.below(n));
        while (visited[s])
            s = (s + 1) % static_cast<uint32_t>(n);
        queue.push_back(s);
        visited[s] = 1;
        size_t head = order.size();
        order.push_back(s);
        while (head < order.size()) {
            uint32_t u = order[head++];
            for (const auto &[v, w] : g.adj[u]) {
                (void)w;
                if (!visited[v]) {
                    visited[v] = 1;
                    order.push_back(v);
                }
            }
        }
        queue.clear();
    }

    for (uint32_t u : order) {
        // Affinity per partition.
        std::vector<uint64_t> affinity(k, 0);
        for (const auto &[v, w] : g.adj[u]) {
            if (label[v] != ~0u)
                affinity[label[v]] += w;
        }
        uint32_t best = 0;
        double best_score = -1e300;
        for (uint32_t p = 0; p < k; ++p) {
            if (weight[p] + g.vertexWeight[u] > max_weight &&
                weight[p] > 0)
                continue;
            double score = static_cast<double>(affinity[p]) -
                           1e-6 * static_cast<double>(weight[p]);
            if (score > best_score) {
                best_score = score;
                best = p;
            }
        }
        if (best_score == -1e300) {
            // Everything full: pick the lightest.
            best = static_cast<uint32_t>(
                std::min_element(weight.begin(), weight.end()) -
                weight.begin());
        }
        label[u] = best;
        weight[best] += g.vertexWeight[u];
    }
    return label;
}

/**
 * Force every partition under the weight cap by evicting vertices
 * from overweight partitions into the lightest fitting one, breaking
 * the fewest connections possible.
 */
void
rebalance(const Graph &g, uint32_t k, std::vector<uint32_t> &label,
          uint64_t max_weight)
{
    size_t n = g.numVertices();
    std::vector<uint64_t> weight(k, 0);
    for (size_t u = 0; u < n; ++u)
        weight[label[u]] += g.vertexWeight[u];

    for (unsigned guard = 0; guard < 4 * n + 16; ++guard) {
        uint32_t heavy = static_cast<uint32_t>(
            std::max_element(weight.begin(), weight.end()) -
            weight.begin());
        if (weight[heavy] <= max_weight)
            break;
        // Pick the vertex in the heavy partition with the least
        // internal connectivity.
        uint32_t victim = ~0u;
        uint64_t best_conn = ~0ull;
        for (uint32_t u = 0; u < n; ++u) {
            if (label[u] != heavy)
                continue;
            uint64_t internal = 0;
            for (const auto &[v, w] : g.adj[u]) {
                if (label[v] == heavy)
                    internal += w;
            }
            if (internal < best_conn) {
                best_conn = internal;
                victim = u;
            }
        }
        if (victim == ~0u)
            break;
        uint32_t lightest = static_cast<uint32_t>(
            std::min_element(weight.begin(), weight.end()) -
            weight.begin());
        label[victim] = lightest;
        weight[heavy] -= g.vertexWeight[victim];
        weight[lightest] += g.vertexWeight[victim];
    }
}

/** Greedy boundary refinement: move vertices with positive gain. */
void
refine(const Graph &g, uint32_t k, std::vector<uint32_t> &label,
       uint64_t max_weight, unsigned passes)
{
    size_t n = g.numVertices();
    rebalance(g, k, label, max_weight);
    std::vector<uint64_t> weight(k, 0);
    for (size_t u = 0; u < n; ++u)
        weight[label[u]] += g.vertexWeight[u];

    std::vector<uint64_t> conn(k, 0);
    for (unsigned pass = 0; pass < passes; ++pass) {
        bool moved = false;
        for (uint32_t u = 0; u < n; ++u) {
            if (g.adj[u].empty())
                continue;
            std::fill(conn.begin(), conn.end(), 0);
            bool boundary = false;
            for (const auto &[v, w] : g.adj[u]) {
                conn[label[v]] += w;
                if (label[v] != label[u])
                    boundary = true;
            }
            if (!boundary)
                continue;
            uint32_t from = label[u];
            uint32_t best = from;
            int64_t best_gain = 0;
            for (uint32_t p = 0; p < k; ++p) {
                if (p == from)
                    continue;
                if (weight[p] + g.vertexWeight[u] > max_weight)
                    continue;
                int64_t gain = static_cast<int64_t>(conn[p]) -
                               static_cast<int64_t>(conn[from]);
                if (gain > best_gain) {
                    best_gain = gain;
                    best = p;
                }
            }
            if (best != from) {
                label[u] = best;
                weight[from] -= g.vertexWeight[u];
                weight[best] += g.vertexWeight[u];
                moved = true;
            }
        }
        if (!moved)
            break;
    }
}

} // namespace

PartitionResult
partitionGraph(const Graph &graph, uint32_t k,
               const PartitionOptions &opts)
{
    ASH_ASSERT(k >= 1);
    size_t n = graph.numVertices();
    PartitionResult result;
    if (k == 1 || n == 0) {
        result.label.assign(n, 0);
        uint64_t total = 0;
        for (uint32_t w : graph.vertexWeight)
            total += w;
        result.maxPartWeight = result.minPartWeight = total;
        return result;
    }

    uint64_t total = 0;
    for (uint32_t w : graph.vertexWeight)
        total += w;
    uint64_t max_weight = static_cast<uint64_t>(
        (static_cast<double>(total) / k) * (1.0 + opts.imbalance)) + 1;

    Rng rng(opts.seed);

    // Build the multilevel hierarchy.
    std::vector<Level> levels;
    const Graph *current = &graph;
    size_t target = std::max<size_t>(static_cast<size_t>(k) * 16, 128);
    while (current->numVertices() > target) {
        Level level = coarsen(*current, rng);
        if (level.graph.numVertices() >
            current->numVertices() * 95 / 100)
            break;   // Matching stalled.
        levels.push_back(std::move(level));
        current = &levels.back().graph;
    }

    std::vector<uint32_t> label =
        initialPartition(*current, k, max_weight, rng);
    refine(*current, k, label, max_weight, opts.refinePasses);

    // Project back up, refining at each level.
    for (size_t li = levels.size(); li-- > 0;) {
        const Level &level = levels[li];
        const Graph &fine =
            li == 0 ? graph : levels[li - 1].graph;
        std::vector<uint32_t> fine_label(fine.numVertices());
        for (size_t u = 0; u < fine.numVertices(); ++u)
            fine_label[u] = label[level.coarseOf[u]];
        label = std::move(fine_label);
        refine(fine, k, label, max_weight, opts.refinePasses);
    }

    result.label = std::move(label);
    result.cutWeight = cutWeight(graph, result.label);
    std::vector<uint64_t> weight(k, 0);
    for (size_t u = 0; u < n; ++u)
        weight[result.label[u]] += graph.vertexWeight[u];
    result.maxPartWeight = *std::max_element(weight.begin(),
                                             weight.end());
    result.minPartWeight = *std::min_element(weight.begin(),
                                             weight.end());
    return result;
}

} // namespace ash::partition
