/**
 * @file
 * Analytic energy and area models (the McPAT / FinCACTI / yosys
 * substitutes; Sec 7 and Fig 13). Energy is computed from the event
 * counters the simulators collect (instructions, cache accesses, DRAM
 * traffic, NoC flit-hops, TMU operations) plus static power over the
 * run's duration. Per-event energies are 7 nm-class estimates chosen
 * so the paper's Fig 13 split (cores and caches dominate; TMU small;
 * NoC visible for descriptor-heavy runs) is preserved.
 */

#ifndef ASH_MODEL_ENERGYAREA_H
#define ASH_MODEL_ENERGYAREA_H

#include <string>
#include <vector>

#include "common/Stats.h"

namespace ash::model {

/** Per-event energies in picojoules and static power in watts. */
struct EnergyParams
{
    double instrPj = 18.0;         ///< Per executed instruction.
    double l1AccessPj = 8.0;
    double l2AccessPj = 28.0;
    double dramBytePj = 20.0;
    double nocFlitHopPj = 5.0;
    double tmuOpPj = 6.0;          ///< Per descriptor enqueue/merge.
    double commitPj = 3.0;         ///< Per committed/aborted task.
    double staticWattsPerCore = 0.02;
    double staticWattsPerMBCache = 0.06;
};

/** Energy breakdown in millijoules, Fig 13 categories. */
struct EnergyBreakdown
{
    double staticMj = 0.0;
    double coresMj = 0.0;
    double cachesMj = 0.0;
    double tmuMj = 0.0;
    double nocMj = 0.0;

    double
    totalMj() const
    {
        return staticMj + coresMj + cachesMj + tmuMj + nocMj;
    }
};

/**
 * Compute the energy breakdown from a simulator's stats.
 *
 * @param stats     Event counters from AshSimulator / baseline runs.
 * @param cores     Number of cores in the modeled system.
 * @param cacheMB   Total on-chip cache capacity.
 * @param seconds   Wall-clock duration of the modeled run.
 */
EnergyBreakdown computeEnergy(const StatSet &stats, uint32_t cores,
                              double cacheMB, double seconds,
                              const EnergyParams &p = {});

/** One row of the Table 2 area breakdown. */
struct AreaRow
{
    std::string component;
    double mm2;
};

/**
 * Area of an ASH chip in mm^2 at 7 nm (Table 2 model): scaled Atom-
 * class cores, SRAM macros for L2, DDR5 controllers and PHY, and the
 * synthesized SASH TMU state (45 KB/tile).
 */
std::vector<AreaRow> ashArea(uint32_t cores, uint32_t tiles,
                             double l2MBPerTile);

/** Area of a Zen2-class multicore for the 3x comparison (Sec 9.1). */
double zen2Area(uint32_t cores);

} // namespace ash::model

#endif // ASH_MODEL_ENERGYAREA_H
