#include "model/EnergyArea.h"

namespace ash::model {

EnergyBreakdown
computeEnergy(const StatSet &stats, uint32_t cores, double cacheMB,
              double seconds, const EnergyParams &p)
{
    EnergyBreakdown e;
    auto mj = [](double pj) { return pj * 1e-9; };

    e.coresMj = mj(static_cast<double>(stats.get("instrs")) * p.instrPj);

    double l1 = static_cast<double>(stats.get("l1dAccesses") +
                                    stats.get("l1iAccesses"));
    double l2 = static_cast<double>(stats.get("l2Accesses"));
    e.cachesMj = mj(l1 * p.l1AccessPj + l2 * p.l2AccessPj +
                    static_cast<double>(stats.get("dramBytes")) *
                        p.dramBytePj);

    double tmu_ops = static_cast<double>(
        stats.get("descsSent") + stats.get("descsArrived") +
        stats.get("descsConsumed") + stats.get("stimulusDescs"));
    double commits = static_cast<double>(stats.get("tasksCommitted") +
                                         stats.get("aborts"));
    e.tmuMj = mj(tmu_ops * p.tmuOpPj + commits * p.commitPj);

    e.nocMj = mj(static_cast<double>(stats.get("nocFlitHops")) *
                 p.nocFlitHopPj);

    double static_w = cores * p.staticWattsPerCore +
                      cacheMB * p.staticWattsPerMBCache;
    e.staticMj = static_w * seconds * 1e3;
    return e;
}

std::vector<AreaRow>
ashArea(uint32_t cores, uint32_t tiles, double l2MBPerTile)
{
    // Table 2 calibration: 256 scaled Atom-class cores = 45.1 mm^2,
    // 64 x 1 MB L2 = 39.3 mm^2, 4 memory controllers + PHY = 25.0,
    // 64 SASH TMUs = 5.6.
    std::vector<AreaRow> rows;
    rows.push_back({"cores", cores * (45.1 / 256.0)});
    rows.push_back({"L2 caches", tiles * l2MBPerTile * (39.3 / 64.0)});
    rows.push_back({"mem ctrl + PHY", 25.0});
    rows.push_back({"SASH TMUs", tiles * (5.6 / 64.0)});
    double total = 0.0;
    for (const AreaRow &r : rows)
        total += r.mm2;
    rows.push_back({"total", total});
    return rows;
}

double
zen2Area(uint32_t cores)
{
    // A Zen 2 CCD (8 cores + L3) is ~74 mm^2 at 7 nm; a 32-core
    // Threadripper uses 4 CCDs plus an I/O die (~125 mm^2 at 12 nm,
    // counted at half weight for the 7 nm comparison).
    double ccds = cores / 8.0;
    return ccds * 74.0 + 62.0;
}

} // namespace ash::model
