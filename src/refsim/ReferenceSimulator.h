/**
 * @file
 * Full-evaluation reference simulator: the golden functional model and
 * the execution substrate of the "Verilator" baselines. Each call to
 * step() evaluates every combinational node in levelized order, then
 * commits registers and memory writes at the clock edge (two-phase
 * synchronous semantics). It also measures per-node activity, which
 * feeds the selective-execution analyses (Fig 3c, Table 4).
 *
 * Hot-path layout: the constructor pre-decodes the netlist into a
 * structure-of-arrays eval program (EvalInst records over a
 * contiguous operand-index/width pool) so the per-cycle loop never
 * touches Node's operand vectors or chases the netlist for widths,
 * and builds a CSR fanout graph with cached per-node costs so change
 * tracking is one pass driven by what actually changed.
 */

#ifndef ASH_REFSIM_REFERENCESIMULATOR_H
#define ASH_REFSIM_REFERENCESIMULATOR_H

#include <cstdint>
#include <vector>

#include "ckpt/Checkpoint.h"
#include "common/Stats.h"
#include "refsim/CycleEngine.h"
#include "refsim/Stimulus.h"
#include "rtl/Netlist.h"

namespace ash::refsim {

/** Levelized full-evaluation simulator over an rtl::Netlist. */
class ReferenceSimulator : public CycleEngine
{
  public:
    explicit ReferenceSimulator(const rtl::Netlist &netlist);

    /** Simulate one cycle, pulling inputs from @p stimulus. */
    void step(Stimulus &stimulus) override;

    /**
     * Run @p cycles further cycles, recording outputs each cycle.
     * After a restore() this continues from the restored cycle and
     * the returned trace covers only the tail. @p hook, when set,
     * fires after every completed cycle with the absolute cycle
     * number — the refsim quiescent point is any cycle boundary.
     */
    OutputTrace run(Stimulus &stimulus, uint64_t cycles,
                    ckpt::CycleHook *hook = nullptr) override;

    /// @name ckpt::Snapshotter
    /// @{
    void save(std::ostream &out) const override;
    void restore(std::istream &in) override;
    const char *engineName() const override { return "refsim"; }
    /// @}

    /** Current value of any node (post-step). */
    uint64_t value(rtl::NodeId id) const override
    { return _values[id]; }

    /** Current output frame. */
    OutputFrame outputFrame() const override;

    /** Cycles simulated so far. */
    uint64_t cycle() const override { return _cycle; }

    /**
     * Change flags from the most recent step(): entry per node, true if
     * the node's value differs from the previous cycle.
     */
    const std::vector<uint8_t> &changedLastCycle() const override
    { return _changed; }

    /**
     * Activity factor accumulated over the run: fraction of total node
     * cost belonging to nodes whose *inputs* changed that cycle (the
     * work a perfectly selective simulator must still do).
     */
    double activityFactor() const override;

    /** Reset registers, memories, and counters to time zero. */
    void reset() override;

    /**
     * Run statistics: cycles, nodesEvaluated, nodesChanged,
     * memWrites counters and a per-cycle "activeCostFrac" sample
     * (plus a changedNodes histogram). Cleared by reset().
     */
    const StatSet &stats() const override { return _stats; }

  private:
    /**
     * One pre-decoded evaluation step (SoA program, levelized
     * order). Operand value indices and widths live in the shared
     * _operandIdx/_operandWidth pools at [opBase, opBase+numOperands).
     * aux is the register index (Reg) or memory id (MemRead).
     */
    struct EvalInst
    {
        rtl::Op op;
        uint8_t width;
        uint16_t numOperands;
        uint32_t dst;
        uint32_t aux;
        uint32_t opBase;
        uint64_t imm;
    };

    void buildProgram();

    const rtl::Netlist &_nl;
    std::vector<rtl::NodeId> _order;      ///< Levelized evaluation order.
    std::vector<uint64_t> _values;        ///< Current value per node.
    std::vector<uint64_t> _prevValues;    ///< Previous-cycle values.
    std::vector<uint8_t> _changed;        ///< Per-node change flag.
    std::vector<uint64_t> _regState;      ///< Architectural register state.
    std::vector<uint64_t> _regScratch;    ///< Next-state staging (reused).
    std::vector<std::vector<uint64_t>> _memState;
    std::vector<uint64_t> _inputBuffer;

    std::vector<EvalInst> _program;       ///< One inst per _order entry.
    std::vector<uint32_t> _operandIdx;    ///< Pooled operand value ids.
    std::vector<uint8_t> _operandWidth;   ///< Pooled operand widths.
    std::vector<uint32_t> _fanoutBase;    ///< CSR row starts (n+1).
    std::vector<uint32_t> _fanoutList;    ///< CSR consumer node ids.
    std::vector<uint32_t> _cost;          ///< Cached rtl::nodeCost.
    std::vector<uint32_t> _activeStamp;   ///< Cycle stamp per node.
    uint32_t _stampGen = 0;

    uint64_t _cycle = 0;
    double _activeCostSum = 0.0;          ///< Sum over cycles.
    uint64_t _totalCost = 0;              ///< Per-cycle total node cost.
    StatSet _stats;
};

} // namespace ash::refsim

#endif // ASH_REFSIM_REFERENCESIMULATOR_H
