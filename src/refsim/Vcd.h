/**
 * @file
 * VCD (Value Change Dump) waveform writing for the reference
 * simulator — the standard debugging output of RTL simulators, so the
 * reproduction is usable as an actual simulator: run a design, open
 * the wave in GTKWave.
 */

#ifndef ASH_REFSIM_VCD_H
#define ASH_REFSIM_VCD_H

#include <ostream>
#include <string>
#include <vector>

#include "refsim/CycleEngine.h"

namespace ash::refsim {

/**
 * Streams design inputs, outputs, and registers of a CycleEngine run
 * (reference simulator or jit kernel) into VCD format. Byte-for-byte
 * identical output across engines is part of the jit parity contract.
 */
class VcdWriter
{
  public:
    /**
     * @param nl  The design (must outlive the writer).
     * @param out Stream receiving VCD text (must outlive the writer).
     * @param scope Module scope name in the dump.
     * @param append Resume mode: the header ($timescale/$var/
     *        $enddefinitions) was already written by a previous
     *        writer and must NOT be re-emitted; @p out is expected
     *        to be an append-opened stream. Pair with
     *        restoreState() so change-dedup state carries over and
     *        no timestamp or value line is duplicated.
     */
    VcdWriter(const rtl::Netlist &nl, std::ostream &out,
              const std::string &scope = "top", bool append = false);

    /**
     * Record the state of @p sim after a step. Call once per
     * simulated cycle, in order.
     */
    void sample(const CycleEngine &sim, uint64_t cycle);

    /**
     * Checkpoint the writer's dedup state (per-signal last emitted
     * value + first-sample flag) so a restored run appending to the
     * same file continues byte-identically to an uninterrupted one.
     */
    void saveState(ckpt::SnapshotWriter &w) const;
    void restoreState(ckpt::SnapshotReader &r);

  private:
    struct Signal
    {
        std::string name;
        std::string id;      ///< VCD identifier code.
        rtl::NodeId node;
        unsigned width;
        uint64_t last = ~0ull;
        bool first = true;
    };

    void emitValue(const Signal &sig, uint64_t value);

    const rtl::Netlist &_nl;
    std::ostream &_out;
    std::vector<Signal> _signals;
};

} // namespace ash::refsim

#endif // ASH_REFSIM_VCD_H
