#include "refsim/Vcd.h"

#include "common/Logging.h"

namespace ash::refsim {

namespace {

/** Short printable-ASCII identifier for signal index @p i. */
std::string
vcdId(size_t i)
{
    std::string id;
    do {
        id.push_back(static_cast<char>('!' + i % 94));
        i /= 94;
    } while (i);
    return id;
}

std::string
sanitize(const std::string &name)
{
    std::string out = name;
    for (char &c : out) {
        if (c == ' ')
            c = '_';
    }
    return out;
}

} // namespace

VcdWriter::VcdWriter(const rtl::Netlist &nl, std::ostream &out,
                     const std::string &scope, bool append)
    : _nl(nl), _out(out)
{
    if (!append) {
        _out << "$timescale 1ns $end\n$scope module " << scope
             << " $end\n";
    }
    size_t index = 0;
    auto declare = [&](const std::string &name, rtl::NodeId node,
                       unsigned width) {
        Signal sig;
        sig.name = sanitize(name);
        sig.id = vcdId(index++);
        sig.node = node;
        sig.width = width;
        if (!append) {
            _out << "$var wire " << width << " " << sig.id << " "
                 << sig.name << " $end\n";
        }
        _signals.push_back(std::move(sig));
    };
    for (rtl::NodeId id : nl.inputs())
        declare(nl.inputName(id), id, nl.node(id).width);
    for (rtl::NodeId id : nl.outputs())
        declare(nl.outputName(id), id, nl.node(id).width);
    for (const rtl::RegInfo &reg : nl.regs())
        declare(reg.name, reg.node, nl.node(reg.node).width);
    if (!append)
        _out << "$upscope $end\n$enddefinitions $end\n";
}

void
VcdWriter::saveState(ckpt::SnapshotWriter &w) const
{
    w.u64(_signals.size());
    for (const Signal &sig : _signals) {
        w.u64(sig.last);
        w.b(sig.first);
    }
}

void
VcdWriter::restoreState(ckpt::SnapshotReader &r)
{
    uint64_t n = r.u64();
    if (n != _signals.size())
        throw ckpt::SnapshotError("VCD signal count mismatch");
    for (Signal &sig : _signals) {
        sig.last = r.u64();
        sig.first = r.b();
    }
}

void
VcdWriter::emitValue(const Signal &sig, uint64_t value)
{
    if (sig.width == 1) {
        _out << (value & 1) << sig.id << "\n";
        return;
    }
    _out << "b";
    bool leading = true;
    for (int bit = static_cast<int>(sig.width) - 1; bit >= 0; --bit) {
        int v = (value >> bit) & 1;
        if (v == 0 && leading && bit != 0)
            continue;   // VCD allows dropped leading zeros.
        leading = false;
        _out << v;
    }
    _out << " " << sig.id << "\n";
}

void
VcdWriter::sample(const CycleEngine &sim, uint64_t cycle)
{
    _out << "#" << cycle << "\n";
    for (Signal &sig : _signals) {
        uint64_t value = sim.value(sig.node);
        if (sig.first || value != sig.last) {
            emitValue(sig, value);
            sig.last = value;
            sig.first = false;
        }
    }
}

} // namespace ash::refsim
