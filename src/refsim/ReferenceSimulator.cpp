#include "refsim/ReferenceSimulator.h"

#include "common/Logging.h"
#include "guard/Cancel.h"
#include "obs/Trace.h"
#include "prof/Prof.h"
#include "rtl/Cost.h"
#include "rtl/Eval.h"

namespace ash::refsim {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

namespace {

/** Levelization is a real compile phase on big designs; give the
 *  host profiler a named zone for it. */
std::vector<NodeId>
levelize(const rtl::Netlist &nl)
{
    ASH_PROF_ZONE("levelize");
    return nl.topoOrder();
}

} // namespace

ReferenceSimulator::ReferenceSimulator(const rtl::Netlist &netlist)
    : _nl(netlist), _order(levelize(netlist)),
      _values(netlist.numNodes(), 0), _prevValues(netlist.numNodes(), 0),
      _changed(netlist.numNodes(), 0),
      _inputBuffer(netlist.inputs().size(), 0)
{
    buildProgram();
    reset();
    for (NodeId id = 0; id < _nl.numNodes(); ++id)
        _totalCost += rtl::nodeCost(_nl.node(id));
}

void
ReferenceSimulator::buildProgram()
{
    size_t n = _nl.numNodes();

    _program.reserve(_order.size());
    for (NodeId id : _order) {
        const Node &node = _nl.node(id);
        ASH_ASSERT(node.op == Op::Concat || node.operands.size() <= 8,
                   "node with >8 operands needs Concat splitting");
        EvalInst inst;
        inst.op = node.op;
        inst.width = node.width;
        inst.numOperands =
            static_cast<uint16_t>(node.operands.size());
        inst.dst = id;
        inst.aux = 0;
        inst.opBase = static_cast<uint32_t>(_operandIdx.size());
        inst.imm = node.imm;
        if (node.op == Op::Reg)
            inst.aux = static_cast<uint32_t>(_nl.regIndex(id));
        else if (node.op == Op::MemRead)
            inst.aux = node.mem;
        for (NodeId oper : node.operands) {
            _operandIdx.push_back(oper);
            _operandWidth.push_back(_nl.node(oper).width);
        }
        _program.push_back(inst);
    }

    // CSR fanout graph (consumer = any node listing the producer as
    // an operand; duplicates kept, the per-cycle stamp dedups) and
    // the per-node cost cache driving activity accounting.
    _cost.resize(n);
    _fanoutBase.assign(n + 1, 0);
    for (NodeId id = 0; id < n; ++id) {
        _cost[id] = static_cast<uint32_t>(rtl::nodeCost(_nl.node(id)));
        for (NodeId oper : _nl.node(id).operands)
            ++_fanoutBase[oper + 1];
    }
    for (size_t i = 1; i <= n; ++i)
        _fanoutBase[i] += _fanoutBase[i - 1];
    _fanoutList.resize(_fanoutBase[n]);
    std::vector<uint32_t> fill(_fanoutBase.begin(),
                               _fanoutBase.end() - 1);
    for (NodeId id = 0; id < n; ++id)
        for (NodeId oper : _nl.node(id).operands)
            _fanoutList[fill[oper]++] = id;

    _activeStamp.assign(n, 0);
}

void
ReferenceSimulator::reset()
{
    _cycle = 0;
    _activeCostSum = 0.0;
    _stats.clear();
    std::fill(_values.begin(), _values.end(), 0);
    std::fill(_prevValues.begin(), _prevValues.end(), 0);
    std::fill(_changed.begin(), _changed.end(), 0);
    std::fill(_activeStamp.begin(), _activeStamp.end(), 0);
    _stampGen = 0;
    _regState.clear();
    for (const rtl::RegInfo &reg : _nl.regs())
        _regState.push_back(reg.init);
    _regScratch.assign(_regState.size(), 0);
    _memState.clear();
    for (const rtl::MemInfo &mem : _nl.memories()) {
        std::vector<uint64_t> contents(mem.depth, 0);
        for (size_t i = 0; i < mem.init.size(); ++i)
            contents[i] = mem.init[i];
        _memState.push_back(std::move(contents));
    }
}

void
ReferenceSimulator::step(Stimulus &stimulus)
{
    std::fill(_inputBuffer.begin(), _inputBuffer.end(), 0);
    stimulus.apply(_cycle, _inputBuffer);

    // Double buffer: the old current values become the previous-cycle
    // snapshot; every slot of the new current buffer is rewritten
    // below except MemWrite sinks, which are never written and stay 0
    // in both buffers, so no copy is needed.
    std::swap(_values, _prevValues);

    // Seed sources, then evaluate combinational logic in levelized
    // order (phase 1 of the two-phase clocking scheme) off the
    // pre-decoded SoA program.
    for (size_t i = 0; i < _nl.inputs().size(); ++i) {
        _values[_nl.inputs()[i]] = truncate(
            _inputBuffer[i], _nl.node(_nl.inputs()[i]).width);
    }
    uint64_t *vals = _values.data();
    const uint32_t *opIdx = _operandIdx.data();
    const uint8_t *opW = _operandWidth.data();
    for (const EvalInst &inst : _program) {
        const uint32_t *ops = opIdx + inst.opBase;
        const uint8_t *ows = opW + inst.opBase;
        auto in = [&](size_t i) { return vals[ops[i]]; };
        uint64_t result = 0;
        switch (inst.op) {
          case Op::Input:
            continue;             // Seeded above.
          case Op::Const:
            vals[inst.dst] = inst.imm;
            continue;
          case Op::Reg:
            vals[inst.dst] = _regState[inst.aux];
            continue;
          case Op::MemRead: {
            const auto &contents = _memState[inst.aux];
            uint64_t addr = in(0);
            vals[inst.dst] =
                addr < contents.size() ? contents[addr] : 0;
            continue;
          }
          case Op::MemWrite:
            continue;             // Effects applied at the clock edge.

          case Op::And: result = in(0) & in(1); break;
          case Op::Or: result = in(0) | in(1); break;
          case Op::Xor: result = in(0) ^ in(1); break;
          case Op::Not: result = ~in(0); break;
          case Op::Add: result = in(0) + in(1); break;
          case Op::Sub: result = in(0) - in(1); break;
          case Op::Mul: result = in(0) * in(1); break;
          case Op::Div:
            // Division by zero is X in Verilog; we define 0
            // (documented subset semantics, two-state logic).
            result = in(1) ? in(0) / in(1) : 0;
            break;
          case Op::Mod:
            result = in(1) ? in(0) % in(1) : 0;
            break;
          case Op::Shl:
            result = in(1) >= inst.width ? 0 : in(0) << in(1);
            break;
          case Op::LShr:
            result = in(1) >= ows[0] ? 0 : in(0) >> in(1);
            break;
          case Op::AShr: {
            int64_t v = signExtend(in(0), ows[0]);
            uint64_t sh = in(1) >= ows[0] ? ows[0] - 1u : in(1);
            result = static_cast<uint64_t>(v >> sh);
            break;
          }
          case Op::Eq: result = in(0) == in(1); break;
          case Op::Ne: result = in(0) != in(1); break;
          case Op::Lt: result = in(0) < in(1); break;
          case Op::Le: result = in(0) <= in(1); break;
          case Op::Gt: result = in(0) > in(1); break;
          case Op::Ge: result = in(0) >= in(1); break;
          case Op::SLt:
            result = signExtend(in(0), ows[0]) <
                     signExtend(in(1), ows[1]);
            break;
          case Op::SLe:
            result = signExtend(in(0), ows[0]) <=
                     signExtend(in(1), ows[1]);
            break;
          case Op::SGt:
            result = signExtend(in(0), ows[0]) >
                     signExtend(in(1), ows[1]);
            break;
          case Op::SGe:
            result = signExtend(in(0), ows[0]) >=
                     signExtend(in(1), ows[1]);
            break;
          case Op::Mux:
            result = in(0) ? in(1) : in(2);
            break;
          case Op::Concat: {
            // Operands are MSB-first.
            for (size_t i = 0; i < inst.numOperands; ++i)
                result = (result << ows[i]) | truncate(in(i), ows[i]);
            break;
          }
          case Op::Slice:
            result = in(0) >> inst.imm;
            break;
          case Op::ZExt:
            result = in(0);
            break;
          case Op::SExt:
            result =
                static_cast<uint64_t>(signExtend(in(0), ows[0]));
            break;
          case Op::RedAnd:
            result = truncate(in(0), ows[0]) == mask64(ows[0]);
            break;
          case Op::RedOr:
            result = in(0) != 0;
            break;
          case Op::RedXor:
            result = __builtin_parityll(in(0));
            break;
          case Op::Output:
            result = in(0);
            break;
        }
        vals[inst.dst] = truncate(result, inst.width);
    }

    // Change tracking and activity accounting, fused into one pass:
    // a node's cost is active iff any of its operands changed, so
    // walking each changed node's fanout (stamp-deduped) visits
    // exactly the nodes the operand scan used to find.
    uint64_t active_cost = 0;
    uint64_t changed_nodes = 0;
    uint32_t stamp = ++_stampGen;
    const uint64_t *prev = _prevValues.data();
    for (NodeId id = 0; id < _nl.numNodes(); ++id) {
        uint8_t changed = vals[id] != prev[id];
        _changed[id] = changed;
        if (!changed)
            continue;
        ++changed_nodes;
        for (uint32_t f = _fanoutBase[id]; f < _fanoutBase[id + 1];
             ++f) {
            uint32_t consumer = _fanoutList[f];
            if (_activeStamp[consumer] != stamp) {
                _activeStamp[consumer] = stamp;
                active_cost += _cost[consumer];
            }
        }
    }
    if (_totalCost > 0)
        _activeCostSum += static_cast<double>(active_cost) /
                          static_cast<double>(_totalCost);

    _stats.inc("cycles");
    _stats.inc("nodesEvaluated", _order.size());
    _stats.inc("nodesChanged", changed_nodes);
    _stats.hist("changedNodes", changed_nodes);
    if (_totalCost > 0)
        _stats.sample("activeCostFrac",
                      static_cast<double>(active_cost) /
                          static_cast<double>(_totalCost));
    ASH_OBS_EVENT(obs::EventKind::RefCycle, _cycle, 1, 0, 0,
                  changed_nodes, active_cost);

    // Phase 2: clock edge. Latch registers (through the reused
    // scratch buffer; every entry is overwritten), apply memory
    // writes in port order (later ports win on same-address
    // conflicts).
    for (size_t i = 0; i < _nl.regs().size(); ++i)
        _regScratch[i] = _values[_nl.regs()[i].next];
    std::swap(_regState, _regScratch);

    for (size_t m = 0; m < _nl.memories().size(); ++m) {
        for (NodeId port : _nl.memories()[m].writePorts) {
            const Node &n = _nl.node(port);
            if (!_values[n.operands[2]])
                continue;
            uint64_t addr = _values[n.operands[0]];
            if (addr < _memState[m].size()) {
                _memState[m][addr] = _values[n.operands[1]];
                _stats.inc("memWrites");
            }
        }
    }

    ++_cycle;
}

OutputFrame
ReferenceSimulator::outputFrame() const
{
    OutputFrame frame;
    frame.reserve(_nl.outputs().size());
    for (NodeId id : _nl.outputs())
        frame.push_back(_values[id]);
    return frame;
}

OutputTrace
ReferenceSimulator::run(Stimulus &stimulus, uint64_t cycles,
                        ckpt::CycleHook *hook)
{
    ASH_PROF_ZONE("run:refsim");
    OutputTrace trace;
    trace.reserve(cycles);
    for (uint64_t c = 0; c < cycles; ++c) {
        // Cooperative cancellation (job deadlines): free when no
        // token is installed on this thread.
        guard::pollCancel();
        step(stimulus);
        trace.push_back(outputFrame());
        if (hook)
            hook->onCycle(_cycle, *this);
    }
    return trace;
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

namespace {

/** Section tags of the refsim snapshot layout (version 1). */
enum : uint32_t {
    kSecState = 1,
    kSecStats = 2,
};

} // namespace

void
ReferenceSimulator::save(std::ostream &out) const
{
    // refsim has no tunable engine config: its behavior is fully
    // determined by the netlist, so the config hash is a constant.
    ckpt::SnapshotWriter w(out, engineName(),
                           ckpt::designFingerprint(_nl), 0);

    w.beginSection(kSecState);
    w.u64(_cycle);
    w.f64(_activeCostSum);
    w.vec(_values);
    w.vec(_prevValues);
    w.vec(_changed);
    w.vec(_regState);
    w.u64(_memState.size());
    for (const std::vector<uint64_t> &mem : _memState)
        w.vec(mem);
    w.endSection();

    w.beginSection(kSecStats);
    ckpt::saveStats(w, _stats);
    w.endSection();
}

void
ReferenceSimulator::restore(std::istream &in)
{
    ckpt::SnapshotReader r(in);
    r.require(engineName(), ckpt::designFingerprint(_nl), 0);

    r.section(kSecState);
    _cycle = r.u64();
    _activeCostSum = r.f64();
    r.vec(_values);
    r.vec(_prevValues);
    r.vec(_changed);
    r.vec(_regState);
    if (_values.size() != _nl.numNodes() ||
        _prevValues.size() != _nl.numNodes() ||
        _changed.size() != _nl.numNodes() ||
        _regState.size() != _nl.regs().size())
        throw ckpt::SnapshotError("refsim state size mismatch");
    uint64_t mems = r.u64();
    if (mems != _nl.memories().size())
        throw ckpt::SnapshotError("refsim memory count mismatch");
    _memState.resize(mems);
    for (size_t m = 0; m < mems; ++m) {
        r.vec(_memState[m]);
        if (_memState[m].size() != _nl.memories()[m].depth)
            throw ckpt::SnapshotError("refsim memory depth mismatch");
    }
    r.endSection();

    r.section(kSecStats);
    ckpt::restoreStats(r, _stats);
    r.endSection();
    r.expectEnd();

    // Per-step scratch: rebuilt by the next step(), content-free in
    // the image. Stamps restart at zero exactly as after reset().
    _regScratch.assign(_regState.size(), 0);
    std::fill(_activeStamp.begin(), _activeStamp.end(), 0);
    _stampGen = 0;
}

double
ReferenceSimulator::activityFactor() const
{
    return _cycle == 0 ? 0.0
                       : _activeCostSum / static_cast<double>(_cycle);
}

} // namespace ash::refsim

