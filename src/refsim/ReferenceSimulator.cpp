#include "refsim/ReferenceSimulator.h"

#include "common/Logging.h"
#include "obs/Trace.h"
#include "rtl/Cost.h"
#include "rtl/Eval.h"

namespace ash::refsim {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

ReferenceSimulator::ReferenceSimulator(const rtl::Netlist &netlist)
    : _nl(netlist), _order(netlist.topoOrder()),
      _values(netlist.numNodes(), 0), _prevValues(netlist.numNodes(), 0),
      _changed(netlist.numNodes(), 0),
      _inputBuffer(netlist.inputs().size(), 0)
{
    reset();
    for (NodeId id = 0; id < _nl.numNodes(); ++id)
        _totalCost += rtl::nodeCost(_nl.node(id));
}

void
ReferenceSimulator::reset()
{
    _cycle = 0;
    _activeCostSum = 0.0;
    _stats.clear();
    std::fill(_values.begin(), _values.end(), 0);
    std::fill(_prevValues.begin(), _prevValues.end(), 0);
    std::fill(_changed.begin(), _changed.end(), 0);
    _regState.clear();
    for (const rtl::RegInfo &reg : _nl.regs())
        _regState.push_back(reg.init);
    _memState.clear();
    for (const rtl::MemInfo &mem : _nl.memories()) {
        std::vector<uint64_t> contents(mem.depth, 0);
        for (size_t i = 0; i < mem.init.size(); ++i)
            contents[i] = mem.init[i];
        _memState.push_back(std::move(contents));
    }
}

void
ReferenceSimulator::step(Stimulus &stimulus)
{
    std::fill(_inputBuffer.begin(), _inputBuffer.end(), 0);
    stimulus.apply(_cycle, _inputBuffer);

    _prevValues = _values;

    // Seed sources, then evaluate combinational logic in levelized
    // order (phase 1 of the two-phase clocking scheme).
    for (size_t i = 0; i < _nl.inputs().size(); ++i) {
        _values[_nl.inputs()[i]] = truncate(
            _inputBuffer[i], _nl.node(_nl.inputs()[i]).width);
    }
    uint64_t scratch[8];
    for (NodeId id : _order) {
        const Node &n = _nl.node(id);
        switch (n.op) {
          case Op::Input:
            break;                // Seeded above.
          case Op::Const:
            _values[id] = n.imm;
            break;
          case Op::Reg:
            _values[id] = _regState[_nl.regIndex(id)];
            break;
          case Op::MemRead: {
            const auto &contents = _memState[n.mem];
            uint64_t addr = _values[n.operands[0]];
            _values[id] = addr < contents.size() ? contents[addr] : 0;
            break;
          }
          case Op::MemWrite:
            break;                // Effects applied at the clock edge.
          default: {
            ASH_ASSERT(n.operands.size() <= 8,
                       "node with >8 operands needs Concat splitting");
            for (size_t i = 0; i < n.operands.size(); ++i)
                scratch[i] = _values[n.operands[i]];
            _values[id] = rtl::evalCombOp(n, _nl, scratch);
            break;
          }
        }
    }

    // Change tracking and activity accounting.
    uint64_t active_cost = 0;
    uint64_t changed_nodes = 0;
    for (NodeId id = 0; id < _nl.numNodes(); ++id) {
        _changed[id] = _values[id] != _prevValues[id];
        changed_nodes += _changed[id];
    }
    for (NodeId id = 0; id < _nl.numNodes(); ++id) {
        const Node &n = _nl.node(id);
        if (n.isSource())
            continue;
        bool input_changed = false;
        for (NodeId oper : n.operands) {
            if (_changed[oper]) {
                input_changed = true;
                break;
            }
        }
        if (input_changed)
            active_cost += rtl::nodeCost(n);
    }
    if (_totalCost > 0)
        _activeCostSum += static_cast<double>(active_cost) /
                          static_cast<double>(_totalCost);

    _stats.inc("cycles");
    _stats.inc("nodesEvaluated", _order.size());
    _stats.inc("nodesChanged", changed_nodes);
    _stats.hist("changedNodes", changed_nodes);
    if (_totalCost > 0)
        _stats.sample("activeCostFrac",
                      static_cast<double>(active_cost) /
                          static_cast<double>(_totalCost));
    ASH_OBS_EVENT(obs::EventKind::RefCycle, _cycle, 1, 0, 0,
                  changed_nodes, active_cost);

    // Phase 2: clock edge. Latch registers, apply memory writes in
    // port order (later ports win on same-address conflicts).
    std::vector<uint64_t> next_regs(_regState.size());
    for (size_t i = 0; i < _nl.regs().size(); ++i)
        next_regs[i] = _values[_nl.regs()[i].next];
    _regState = std::move(next_regs);

    for (size_t m = 0; m < _nl.memories().size(); ++m) {
        for (NodeId port : _nl.memories()[m].writePorts) {
            const Node &n = _nl.node(port);
            if (!_values[n.operands[2]])
                continue;
            uint64_t addr = _values[n.operands[0]];
            if (addr < _memState[m].size()) {
                _memState[m][addr] = _values[n.operands[1]];
                _stats.inc("memWrites");
            }
        }
    }

    ++_cycle;
}

OutputFrame
ReferenceSimulator::outputFrame() const
{
    OutputFrame frame;
    frame.reserve(_nl.outputs().size());
    for (NodeId id : _nl.outputs())
        frame.push_back(_values[id]);
    return frame;
}

OutputTrace
ReferenceSimulator::run(Stimulus &stimulus, uint64_t cycles)
{
    OutputTrace trace;
    trace.reserve(cycles);
    for (uint64_t c = 0; c < cycles; ++c) {
        step(stimulus);
        trace.push_back(outputFrame());
    }
    return trace;
}

double
ReferenceSimulator::activityFactor() const
{
    return _cycle == 0 ? 0.0
                       : _activeCostSum / static_cast<double>(_cycle);
}

} // namespace ash::refsim
