/**
 * @file
 * Testbench stimulus interface. An RTL simulation feeds inputs each
 * simulated cycle (Sec 2.1); a Stimulus produces those inputs. The same
 * Stimulus object drives the reference simulator, the baselines, and
 * the ASH chip model, which is what lets us check output equivalence.
 */

#ifndef ASH_REFSIM_STIMULUS_H
#define ASH_REFSIM_STIMULUS_H

#include <cstdint>
#include <memory>
#include <vector>

namespace ash::refsim {

/** Supplies design input values for each simulated cycle. */
class Stimulus
{
  public:
    virtual ~Stimulus() = default;

    /**
     * Fill @p input_values for @p cycle. Entry i corresponds to
     * Netlist::inputs()[i]. The vector arrives sized and zeroed.
     * Implementations must be deterministic functions of the cycle
     * number so different simulators can replay the same stimulus.
     */
    virtual void apply(uint64_t cycle,
                       std::vector<uint64_t> &input_values) = 0;
};

/** Stimulus that holds every input at zero. */
class ZeroStimulus : public Stimulus
{
  public:
    void apply(uint64_t, std::vector<uint64_t> &) override {}
};

using StimulusPtr = std::shared_ptr<Stimulus>;

} // namespace ash::refsim

#endif // ASH_REFSIM_STIMULUS_H
