/**
 * @file
 * The functional cycle-engine interface: anything that simulates a
 * netlist one design cycle at a time with full per-node visibility.
 * Both the interpreting reference simulator and the ash_jit compiled
 * kernels implement it, which is what makes them interchangeable
 * behind `--engine refsim|jit` — same stimulus contract, same output
 * frames, same StatSet names, same snapshot shape, same VCD bytes.
 *
 * The interface is deliberately the reference simulator's public
 * surface: the jit engine is held to "byte-identical to refsim",
 * never the other way round.
 */

#ifndef ASH_REFSIM_CYCLEENGINE_H
#define ASH_REFSIM_CYCLEENGINE_H

#include <cstdint>
#include <vector>

#include "ckpt/Checkpoint.h"
#include "common/Stats.h"
#include "refsim/Stimulus.h"
#include "rtl/Netlist.h"

namespace ash::refsim {

/** Per-cycle output snapshot: entry i is Netlist::outputs()[i]. */
using OutputFrame = std::vector<uint64_t>;
/** Output values over a whole run, one frame per cycle. */
using OutputTrace = std::vector<OutputFrame>;

/** A full-visibility functional simulator over an rtl::Netlist. */
class CycleEngine : public ckpt::Snapshotter
{
  public:
    /** Simulate one cycle, pulling inputs from @p stimulus. */
    virtual void step(Stimulus &stimulus) = 0;

    /**
     * Run @p cycles further cycles, recording outputs each cycle.
     * After a restore() this continues from the restored cycle and
     * the returned trace covers only the tail. @p hook, when set,
     * fires after every completed cycle with the absolute cycle
     * number — any cycle boundary is a quiescent point.
     */
    virtual OutputTrace run(Stimulus &stimulus, uint64_t cycles,
                            ckpt::CycleHook *hook = nullptr) = 0;

    /** Current value of any node (post-step). */
    virtual uint64_t value(rtl::NodeId id) const = 0;

    /** Current output frame. */
    virtual OutputFrame outputFrame() const = 0;

    /** Cycles simulated so far. */
    virtual uint64_t cycle() const = 0;

    /**
     * Change flags from the most recent step(): entry per node, true
     * if the node's value differs from the previous cycle.
     */
    virtual const std::vector<uint8_t> &changedLastCycle() const = 0;

    /**
     * Activity factor accumulated over the run: fraction of total
     * node cost belonging to nodes whose *inputs* changed that cycle.
     */
    virtual double activityFactor() const = 0;

    /** Reset registers, memories, and counters to time zero. */
    virtual void reset() = 0;

    /**
     * Run statistics; must use the reference simulator's exact names
     * and per-cycle recording order so `--stats-json` output is
     * byte-identical across engines.
     */
    virtual const StatSet &stats() const = 0;
};

} // namespace ash::refsim

#endif // ASH_REFSIM_CYCLEENGINE_H
