#include "lanes/ScenarioGen.h"

#include "common/BitUtils.h"
#include "common/Logging.h"

namespace ash::lanes {

namespace {

/** splitmix64 finalizer; the stateless hash behind every draw. */
uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Pure draw for (seed, input, block); block granularity encodes the
 *  activity target. */
uint64_t
draw(uint64_t seed, size_t input, uint64_t block)
{
    uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                            (static_cast<uint64_t>(input) + 1);
    z = mix64(z);
    z += 0x9e3779b97f4a7c15ull * (block + 1);
    return mix64(z);
}

/** The stateless stimulus all four kinds share; see header. */
class ScenarioStimulus : public refsim::Stimulus
{
  public:
    ScenarioStimulus(std::vector<uint8_t> widths, ScenarioSpec spec)
        : _widths(std::move(widths)), _spec(spec)
    {
    }

    void
    apply(uint64_t cycle, std::vector<uint64_t> &in) override
    {
        switch (_spec.kind) {
        case ScenarioKind::Random:
            fillRandom(cycle, in);
            return;
        case ScenarioKind::ResetPulse:
            // Leading reset window: every input held at zero (the
            // vector arrives zeroed), then free-running random.
            if (cycle >= _spec.resetCycles)
                fillRandom(cycle, in);
            return;
        case ScenarioKind::ClockGate:
            // Enabled slice of each period toggles; the gated slice
            // holds all inputs at zero. Pure in the cycle number.
            if (cycle % _spec.period < _spec.duty)
                fillRandom(cycle, in);
            return;
        case ScenarioKind::ActivitySweep:
            fillHeld(cycle, in);
            return;
        }
    }

  private:
    void
    fillRandom(uint64_t cycle, std::vector<uint64_t> &in)
    {
        for (size_t i = 0; i < in.size(); ++i)
            in[i] = truncate(draw(_spec.seed, i, cycle), _widths[i]);
    }

    void
    fillHeld(uint64_t cycle, std::vector<uint64_t> &in)
    {
        uint64_t block = cycle / std::max<uint32_t>(1,
                                                    _spec.holdCycles);
        for (size_t i = 0; i < in.size(); ++i)
            in[i] = truncate(draw(_spec.seed, i, block), _widths[i]);
    }

    std::vector<uint8_t> _widths;
    ScenarioSpec _spec;
};

} // namespace

const char *
scenarioKindName(ScenarioKind kind)
{
    switch (kind) {
    case ScenarioKind::Random: return "random";
    case ScenarioKind::ResetPulse: return "reset";
    case ScenarioKind::ClockGate: return "gate";
    case ScenarioKind::ActivitySweep: return "hold";
    }
    return "unknown";
}

std::string
ScenarioSpec::name() const
{
    std::string s;
    switch (kind) {
    case ScenarioKind::Random:
        s = "rand";
        break;
    case ScenarioKind::ResetPulse:
        s = "rst" + std::to_string(resetCycles);
        break;
    case ScenarioKind::ClockGate:
        s = "gate" + std::to_string(duty) + "of" +
            std::to_string(period);
        break;
    case ScenarioKind::ActivitySweep:
        s = "hold" + std::to_string(holdCycles);
        break;
    }
    return s + "-s" + std::to_string(seed);
}

refsim::StimulusPtr
makeScenario(const rtl::Netlist &nl, const ScenarioSpec &spec)
{
    std::vector<uint8_t> widths;
    widths.reserve(nl.inputs().size());
    for (rtl::NodeId id : nl.inputs())
        widths.push_back(nl.node(id).width);
    return std::make_shared<ScenarioStimulus>(std::move(widths), spec);
}

std::vector<ScenarioSpec>
scenarioSweep(uint64_t seed, size_t count)
{
    std::vector<ScenarioSpec> specs;
    specs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        ScenarioSpec spec;
        spec.seed = mix64(seed + i);
        switch (i % 4) {
        case 0:
            spec.kind = ScenarioKind::Random;
            break;
        case 1:
            // Hold lengths sweep {1,2,4,...,64}: the directed
            // activity axis of the fig18-style study.
            spec.kind = ScenarioKind::ActivitySweep;
            spec.holdCycles = 1u << ((i / 4) % 7);
            break;
        case 2:
            spec.kind = ScenarioKind::ResetPulse;
            spec.resetCycles = 4 + static_cast<uint32_t>(i % 13);
            break;
        default:
            spec.kind = ScenarioKind::ClockGate;
            spec.period = 4 + 2 * static_cast<uint32_t>((i / 4) % 4);
            spec.duty = 1 + static_cast<uint32_t>((i / 4) %
                                                  (spec.period - 1));
            break;
        }
        specs.push_back(spec);
    }
    return specs;
}

LaneStimulus::LaneStimulus(std::vector<refsim::StimulusPtr> lanes)
    : _lanes(std::move(lanes))
{
    ASH_ASSERT(!_lanes.empty(), "LaneStimulus needs at least one lane");
    for (const refsim::StimulusPtr &stim : _lanes)
        ASH_ASSERT(stim != nullptr, "LaneStimulus lane is null");
}

void
LaneStimulus::applyLane(size_t lane, uint64_t cycle,
                        std::vector<uint64_t> &in)
{
    ASH_ASSERT(lane < _lanes.size());
    _lanes[lane]->apply(cycle, in);
}

void
LaneStimulus::apply(uint64_t cycle, std::vector<uint64_t> &in)
{
    _lanes[0]->apply(cycle, in);
}

} // namespace ash::lanes
