/**
 * @file
 * ScenarioGen: seeded stimulus-program generation for lane-batched
 * sweeps. A ScenarioSpec names one deterministic stimulus program —
 * free-running random inputs, an initial reset pulse, a duty-cycled
 * clock-gating pattern, or a hold-block "activity sweep" that dials
 * the input toggle rate — and makeScenario() turns it into a
 * refsim::Stimulus whose values are a pure function of (spec, input
 * index, cycle). Purity is the load-bearing property: the same spec
 * replays bit-identically through the reference simulator, the jit
 * engine, and any lane of a LaneBatchEngine, at any batch width, so
 * per-lane results can be byte-compared against solo runs.
 *
 * scenarioSweep() derives a W-entry spec vector from one seed,
 * cycling the four kinds and spreading hold-block lengths across
 * [1, 64] so a fig18-style activity study covers low- and
 * high-toggle corners in a single batch.
 */

#ifndef ASH_LANES_SCENARIOGEN_H
#define ASH_LANES_SCENARIOGEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "refsim/Stimulus.h"
#include "rtl/Netlist.h"

namespace ash::lanes {

/** The stimulus-program families ScenarioGen can emit. */
enum class ScenarioKind : uint8_t
{
    Random,         ///< Fresh hashed value per input per cycle.
    ResetPulse,     ///< All inputs held 0 for resetCycles, then Random.
    ClockGate,      ///< Random for duty cycles per period, else 0.
    ActivitySweep,  ///< Random value held for holdCycles cycles.
};

/** Stable lowercase name of @p kind ("random", "reset", ...). */
const char *scenarioKindName(ScenarioKind kind);

/**
 * One deterministic stimulus program. Every field participates in
 * the value function, so two equal specs produce identical input
 * streams forever.
 */
struct ScenarioSpec
{
    ScenarioKind kind = ScenarioKind::Random;
    uint64_t seed = 1;        ///< Hash root for all value draws.
    uint32_t holdCycles = 1;  ///< ActivitySweep: cycles per held value.
    uint32_t resetCycles = 8; ///< ResetPulse: leading all-zero cycles.
    uint32_t period = 8;      ///< ClockGate: gating period.
    uint32_t duty = 4;        ///< ClockGate: enabled cycles per period.

    /** Stable short label ("rand-s42", "hold16-s42", ...). */
    std::string name() const;
};

/**
 * Build the stimulus for @p spec over @p nl's inputs. Input widths
 * are captured at construction; the netlist itself is not retained.
 * The returned stimulus is a pure function of the cycle number (no
 * internal state), so it may be applied at arbitrary cycles in any
 * order and shared between engines.
 */
refsim::StimulusPtr makeScenario(const rtl::Netlist &nl,
                                 const ScenarioSpec &spec);

/**
 * Derive @p count specs from @p seed: a deterministic round-robin of
 * the four kinds with hold lengths swept over {1,2,4,...,64}, reset
 * widths over [4, 16], and gate duty cycles over a few period/duty
 * shapes. Same (seed, count) prefix-stable: scenarioSweep(s, n) is a
 * prefix of scenarioSweep(s, m) for n < m, which is what lets a
 * retried sub-batch or a narrower --lanes run replay the exact
 * scenarios of the wide one.
 */
std::vector<ScenarioSpec> scenarioSweep(uint64_t seed, size_t count);

/**
 * A per-lane stimulus bundle: lane l of a LaneBatchEngine draws its
 * inputs from stimulus l. Also usable anywhere a plain Stimulus is
 * expected — apply() forwards to lane 0 — so a LaneStimulus of width
 * one is interchangeable with its sole member.
 */
class LaneStimulus : public refsim::Stimulus
{
  public:
    explicit LaneStimulus(std::vector<refsim::StimulusPtr> lanes);

    size_t lanes() const { return _lanes.size(); }

    /** Fill @p in for @p lane at @p cycle (zeroed on entry). */
    void applyLane(size_t lane, uint64_t cycle,
                   std::vector<uint64_t> &in);

    /** Plain-Stimulus view: lane 0. */
    void apply(uint64_t cycle, std::vector<uint64_t> &in) override;

  private:
    std::vector<refsim::StimulusPtr> _lanes;
};

} // namespace ash::lanes

#endif // ASH_LANES_SCENARIOGEN_H
