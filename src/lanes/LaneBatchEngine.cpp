#include "lanes/LaneBatchEngine.h"

#include <algorithm>

#include "ckpt/Snapshot.h"
#include "common/Logging.h"
#include "guard/Cancel.h"
#include "jit/Codegen.h"
#include "obs/Trace.h"
#include "prof/Prof.h"
#include "rtl/Cost.h"

namespace ash::lanes {

using rtl::Node;
using rtl::NodeId;
using rtl::Op;

namespace {

/**
 * Ops whose 1-bit truth table reduces to plain word logic when every
 * operand is 1-bit. Derivations (all values in {0,1}):
 *   Add/Sub -> a^b (mod-2), Mul -> a&b, Eq -> ~(a^b), Ne -> a^b,
 *   Lt -> ~a&b, Le -> ~a|b, Gt -> a&~b, Ge -> a|~b,
 *   Mux -> (s&a)|(~s&b), ZExt/SExt/Output/RedAnd/RedOr/RedXor -> a.
 * Everything else (shifts, division, signed compares, Slice, Concat,
 * MemRead) goes through the generic per-lane path.
 */
bool
bitParallelOp(Op op)
{
    switch (op) {
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Not:
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Eq:
      case Op::Ne:
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Mux:
      case Op::ZExt:
      case Op::SExt:
      case Op::Output:
      case Op::RedAnd:
      case Op::RedOr:
      case Op::RedXor:
        return true;
      default:
        return false;
    }
}

/** Section tags of the lanes snapshot layout (version 1). */
enum : uint32_t {
    kSecState = 1,
    kSecStats = 2,
};

} // namespace

LaneBatchEngine::LaneBatchEngine(const rtl::Netlist &netlist,
                                 uint32_t lanes)
    : _nl(netlist), _w(lanes)
{
    ASH_ASSERT(lanes >= 1, "LaneBatchEngine needs at least one lane");
    _words = (_w + 63) / 64;
    uint32_t tail = _w % 64;
    _tailMask = tail ? mask64(tail) : ~0ull;

    {
        ASH_PROF_ZONE("lanes/build");
        _order = _nl.topoOrder();
        buildProgram();
    }

    // Codegen hook (documented fallback): ash_jit does not yet emit
    // lane-batched kernels — jit::laneKernelSupported() is the probe a
    // compiled path will key off. Until it reports true, every width
    // runs the built-in batched interpreter.
    _haveJitKernel = jit::laneKernelSupported();

    size_t n = _nl.numNodes();
    _bits.assign(_numBit * _words, 0);
    _prevBits.assign(_numBit * _words, 0);
    _wide.assign(_numWide * static_cast<size_t>(_w), 0);
    _prevWide.assign(_numWide * static_cast<size_t>(_w), 0);
    _changedMask.assign(n * _words, 0);
    _consumerMask.assign(n * _words, 0);
    _changedLane0.assign(n, 0);
    _touched.reserve(n);

    const std::vector<rtl::RegInfo> &regs = _nl.regs();
    _regIsBit.assign(regs.size(), 0);
    _regSlot.assign(regs.size(), 0);
    size_t bitRegs = 0, wideRegs = 0;
    for (size_t r = 0; r < regs.size(); ++r) {
        if (_nl.node(regs[r].node).width <= 1) {
            _regIsBit[r] = 1;
            _regSlot[r] = static_cast<uint32_t>(bitRegs++);
        } else {
            _regSlot[r] = static_cast<uint32_t>(wideRegs++);
        }
    }
    _regBits.assign(bitRegs * _words, 0);
    _regWide.assign(wideRegs * static_cast<size_t>(_w), 0);

    _stats = std::vector<StatSet>(_w);
    _activeCostSum.assign(_w, 0.0);
    _laneTraces.resize(_w);
    _unpack.assign(std::max<size_t>(1, _maxOperands) * _w, 0);
    _packScratch.assign(_w, 0);
    _srcPtrs.assign(std::max<size_t>(1, _maxOperands), nullptr);
    _inputBuf.assign(_nl.inputs().size(), 0);
    _stepInputs.assign(_nl.inputs().size() * static_cast<size_t>(_w),
                       0);
    _changedCount.assign(_w, 0);
    _activeCost.assign(_w, 0);

    reset();
    for (NodeId id = 0; id < _nl.numNodes(); ++id)
        _totalCost += rtl::nodeCost(_nl.node(id));
}

void
LaneBatchEngine::buildProgram()
{
    size_t n = _nl.numNodes();

    // Storage classes: width <= 1 (including width-0 MemWrite sinks)
    // packs into bitplanes, everything else into lane arrays. The
    // netlist truncates Const/Reg immediates and memory init words, so
    // a width-1 net can only ever hold 0 or 1 — planes are lossless.
    _isBit.assign(n, 0);
    _slot.assign(n, 0);
    _numBit = _numWide = 0;
    _maxOperands = 0;
    for (NodeId id = 0; id < n; ++id) {
        const Node &node = _nl.node(id);
        _maxOperands = std::max(_maxOperands, node.operands.size());
        if (node.width <= 1) {
            _isBit[id] = 1;
            _slot[id] = static_cast<uint32_t>(_numBit++);
        } else {
            _slot[id] = static_cast<uint32_t>(_numWide++);
        }
    }

    _program.reserve(_order.size());
    for (NodeId id : _order) {
        const Node &node = _nl.node(id);
        ASH_ASSERT(node.op == Op::Concat || node.operands.size() <= 8,
                   "node with >8 operands needs Concat splitting");
        Inst inst;
        inst.op = node.op;
        inst.width = node.width;
        inst.numOperands =
            static_cast<uint16_t>(node.operands.size());
        inst.dst = id;
        inst.aux = 0;
        inst.opBase = static_cast<uint32_t>(_operandIdx.size());
        inst.imm = node.imm;
        bool allBitOperands = true;
        for (NodeId oper : node.operands) {
            _operandIdx.push_back(oper);
            _operandWidth.push_back(_nl.node(oper).width);
            allBitOperands = allBitOperands && _isBit[oper];
        }
        switch (node.op) {
          case Op::Input:
            inst.kind = Kind::Seed;
            break;
          case Op::MemWrite:
            inst.kind = Kind::Skip;
            break;
          case Op::Const:
            inst.kind = _isBit[id] ? Kind::ConstBit : Kind::ConstWide;
            break;
          case Op::Reg:
            inst.aux = static_cast<uint32_t>(_nl.regIndex(id));
            inst.kind = _isBit[id] ? Kind::RegBit : Kind::RegWide;
            break;
          case Op::MemRead:
            inst.aux = node.mem;
            inst.kind = _isBit[id] ? Kind::Pack : Kind::Wide;
            break;
          default:
            if (_isBit[id] && allBitOperands &&
                bitParallelOp(node.op))
                inst.kind = Kind::BitOp;
            else
                inst.kind = _isBit[id] ? Kind::Pack : Kind::Wide;
            break;
        }
        _program.push_back(inst);
    }

    // CSR fanout graph and per-node cost cache, exactly as refsim
    // builds them (duplicates kept; the per-cycle stamp dedups).
    _cost.resize(n);
    _fanoutBase.assign(n + 1, 0);
    for (NodeId id = 0; id < n; ++id) {
        _cost[id] = static_cast<uint32_t>(rtl::nodeCost(_nl.node(id)));
        for (NodeId oper : _nl.node(id).operands)
            ++_fanoutBase[oper + 1];
    }
    for (size_t i = 1; i <= n; ++i)
        _fanoutBase[i] += _fanoutBase[i - 1];
    _fanoutList.resize(_fanoutBase[n]);
    std::vector<uint32_t> fill(_fanoutBase.begin(),
                               _fanoutBase.end() - 1);
    for (NodeId id = 0; id < n; ++id)
        for (NodeId oper : _nl.node(id).operands)
            _fanoutList[fill[oper]++] = id;

    _activeStamp.assign(n, 0);
}

void
LaneBatchEngine::reset()
{
    _cycle = 0;
    std::fill(_activeCostSum.begin(), _activeCostSum.end(), 0.0);
    for (StatSet &s : _stats)
        s.clear();
    std::fill(_bits.begin(), _bits.end(), 0);
    std::fill(_prevBits.begin(), _prevBits.end(), 0);
    std::fill(_wide.begin(), _wide.end(), 0);
    std::fill(_prevWide.begin(), _prevWide.end(), 0);
    std::fill(_changedMask.begin(), _changedMask.end(), 0);
    std::fill(_changedLane0.begin(), _changedLane0.end(), 0);
    std::fill(_activeStamp.begin(), _activeStamp.end(), 0);
    _stampGen = 0;

    std::fill(_regBits.begin(), _regBits.end(), 0);
    std::fill(_regWide.begin(), _regWide.end(), 0);
    const std::vector<rtl::RegInfo> &regs = _nl.regs();
    for (size_t r = 0; r < regs.size(); ++r) {
        uint64_t init = regs[r].init;
        if (_regIsBit[r]) {
            if (init & 1ull) {
                uint64_t *row = _regBits.data() +
                                static_cast<size_t>(_regSlot[r]) *
                                    _words;
                std::fill(row, row + _words, ~0ull);
                row[_words - 1] &= _tailMask;
            }
        } else {
            uint64_t *row = _regWide.data() +
                            static_cast<size_t>(_regSlot[r]) * _w;
            std::fill(row, row + _w, init);
        }
    }

    _memState.clear();
    for (const rtl::MemInfo &mem : _nl.memories()) {
        std::vector<uint64_t> contents(
            static_cast<size_t>(mem.depth) * _w, 0);
        for (size_t i = 0; i < mem.init.size(); ++i)
            for (uint32_t l = 0; l < _w; ++l)
                contents[static_cast<size_t>(l) * mem.depth + i] =
                    mem.init[i];
        _memState.push_back(std::move(contents));
    }

    _laneTraces.assign(_w, {});
}

const uint64_t *
LaneBatchEngine::operandLanes(const Inst &inst, size_t k)
{
    uint32_t oper = _operandIdx[inst.opBase + k];
    if (!_isBit[oper])
        return widePtr(_wide, oper);
    const uint64_t *plane = bitPtr(_bits, oper);
    uint64_t *dst = _unpack.data() + k * _w;
    for (uint32_t l = 0; l < _w; ++l)
        dst[l] = (plane[l >> 6] >> (l & 63)) & 1ull;
    return dst;
}

void
LaneBatchEngine::evalBitOp(const Inst &inst)
{
    uint64_t *d = planeOf(inst.dst);
    const uint32_t *ops = _operandIdx.data() + inst.opBase;
    const uint64_t *a =
        inst.numOperands > 0 ? bitPtr(_bits, ops[0]) : nullptr;
    const uint64_t *b =
        inst.numOperands > 1 ? bitPtr(_bits, ops[1]) : nullptr;
    const uint64_t *c =
        inst.numOperands > 2 ? bitPtr(_bits, ops[2]) : nullptr;
    switch (inst.op) {
      case Op::And:
      case Op::Mul:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = a[wi] & b[wi];
        break;
      case Op::Or:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = a[wi] | b[wi];
        break;
      case Op::Xor:
      case Op::Add:
      case Op::Sub:
      case Op::Ne:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = a[wi] ^ b[wi];
        break;
      case Op::Not:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = ~a[wi];
        break;
      case Op::Eq:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = ~(a[wi] ^ b[wi]);
        break;
      case Op::Lt:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = ~a[wi] & b[wi];
        break;
      case Op::Le:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = ~a[wi] | b[wi];
        break;
      case Op::Gt:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = a[wi] & ~b[wi];
        break;
      case Op::Ge:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = a[wi] | ~b[wi];
        break;
      case Op::Mux:
        // Mux(s, a, b): operand 0 selects between operands 1 and 2.
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = (a[wi] & b[wi]) | (~a[wi] & c[wi]);
        break;
      case Op::ZExt:
      case Op::SExt:
      case Op::Output:
      case Op::RedAnd:
      case Op::RedOr:
      case Op::RedXor:
        for (uint32_t wi = 0; wi < _words; ++wi)
            d[wi] = a[wi];
        break;
      default:
        ASH_ASSERT(false, "op is not bit-parallel");
    }
    d[_words - 1] &= _tailMask;
}

void
LaneBatchEngine::evalGeneric(const Inst &inst)
{
    const uint32_t w = _w;
    const uint8_t *ows = _operandWidth.data() + inst.opBase;
    for (size_t k = 0; k < inst.numOperands; ++k)
        _srcPtrs[k] = operandLanes(inst, k);
    const uint64_t *A = inst.numOperands > 0 ? _srcPtrs[0] : nullptr;
    const uint64_t *B = inst.numOperands > 1 ? _srcPtrs[1] : nullptr;
    const uint64_t *C = inst.numOperands > 2 ? _srcPtrs[2] : nullptr;
    uint64_t *out = inst.kind == Kind::Pack
                        ? _packScratch.data()
                        : widePtr(_wide, inst.dst);

    // Per-lane arms mirror the reference simulator's switch verbatim
    // (including the Div/Mod-by-zero -> 0 subset semantics and the
    // Shl-vs-width / shift-vs-operand-width clamp asymmetry).
    switch (inst.op) {
      case Op::MemRead: {
        // Like refsim, MemRead skips the result truncation: contents
        // are stored pre-truncated to the memory width.
        const std::vector<uint64_t> &mem = _memState[inst.aux];
        const uint64_t depth = _nl.memories()[inst.aux].depth;
        for (uint32_t l = 0; l < w; ++l) {
            uint64_t addr = A[l];
            out[l] = addr < depth
                         ? mem[static_cast<size_t>(l) * depth + addr]
                         : 0;
        }
        break;
      }
      case Op::And:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] & B[l], inst.width);
        break;
      case Op::Or:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] | B[l], inst.width);
        break;
      case Op::Xor:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] ^ B[l], inst.width);
        break;
      case Op::Not:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(~A[l], inst.width);
        break;
      case Op::Add:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] + B[l], inst.width);
        break;
      case Op::Sub:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] - B[l], inst.width);
        break;
      case Op::Mul:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] * B[l], inst.width);
        break;
      case Op::Div:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(B[l] ? A[l] / B[l] : 0, inst.width);
        break;
      case Op::Mod:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(B[l] ? A[l] % B[l] : 0, inst.width);
        break;
      case Op::Shl:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(
                B[l] >= inst.width ? 0 : A[l] << B[l], inst.width);
        break;
      case Op::LShr:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(B[l] >= ows[0] ? 0 : A[l] >> B[l],
                              inst.width);
        break;
      case Op::AShr:
        for (uint32_t l = 0; l < w; ++l) {
            int64_t v = signExtend(A[l], ows[0]);
            uint64_t sh = B[l] >= ows[0] ? ows[0] - 1u : B[l];
            out[l] = truncate(static_cast<uint64_t>(v >> sh),
                              inst.width);
        }
        break;
      case Op::Eq:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] == B[l], inst.width);
        break;
      case Op::Ne:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] != B[l], inst.width);
        break;
      case Op::Lt:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] < B[l], inst.width);
        break;
      case Op::Le:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] <= B[l], inst.width);
        break;
      case Op::Gt:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] > B[l], inst.width);
        break;
      case Op::Ge:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] >= B[l], inst.width);
        break;
      case Op::SLt:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(signExtend(A[l], ows[0]) <
                                  signExtend(B[l], ows[1]),
                              inst.width);
        break;
      case Op::SLe:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(signExtend(A[l], ows[0]) <=
                                  signExtend(B[l], ows[1]),
                              inst.width);
        break;
      case Op::SGt:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(signExtend(A[l], ows[0]) >
                                  signExtend(B[l], ows[1]),
                              inst.width);
        break;
      case Op::SGe:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(signExtend(A[l], ows[0]) >=
                                  signExtend(B[l], ows[1]),
                              inst.width);
        break;
      case Op::Mux:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] ? B[l] : C[l], inst.width);
        break;
      case Op::Concat:
        for (uint32_t l = 0; l < w; ++l) {
            uint64_t r = 0;
            for (size_t i = 0; i < inst.numOperands; ++i)
                r = (r << ows[i]) |
                    truncate(_srcPtrs[i][l], ows[i]);
            out[l] = truncate(r, inst.width);
        }
        break;
      case Op::Slice:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] >> inst.imm, inst.width);
        break;
      case Op::ZExt:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l], inst.width);
        break;
      case Op::SExt:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(
                static_cast<uint64_t>(signExtend(A[l], ows[0])),
                inst.width);
        break;
      case Op::RedAnd:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(
                truncate(A[l], ows[0]) == mask64(ows[0]),
                inst.width);
        break;
      case Op::RedOr:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l] != 0, inst.width);
        break;
      case Op::RedXor:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(
                static_cast<uint64_t>(__builtin_parityll(A[l])),
                inst.width);
        break;
      case Op::Output:
        for (uint32_t l = 0; l < w; ++l)
            out[l] = truncate(A[l], inst.width);
        break;
      case Op::Input:
      case Op::Const:
      case Op::Reg:
      case Op::MemWrite:
        ASH_ASSERT(false, "source/sink reached the generic path");
        break;
    }

    if (inst.kind == Kind::Pack) {
        uint64_t *plane = planeOf(inst.dst);
        for (uint32_t wi = 0; wi < _words; ++wi) {
            uint64_t bits = 0;
            uint32_t base = wi << 6;
            uint32_t lim = std::min<uint32_t>(64u, w - base);
            for (uint32_t bit = 0; bit < lim; ++bit)
                bits |= (out[base + bit] & 1ull) << bit;
            plane[wi] = bits;
        }
    }
}

void
LaneBatchEngine::stepCore(const uint64_t *packedInputs)
{
    const uint32_t w = _w;

    // Double buffer, as in refsim: old current values become the
    // previous-cycle snapshot; every live row is rewritten below
    // except MemWrite sinks, which stay zero in both buffers.
    std::swap(_bits, _prevBits);
    std::swap(_wide, _prevWide);

    // Seed inputs (pre-truncated to input width at pack time), then
    // evaluate in levelized order (phase 1 of two-phase clocking).
    const std::vector<NodeId> &inputs = _nl.inputs();
    for (size_t i = 0; i < inputs.size(); ++i) {
        const uint64_t *lanesIn = packedInputs + i * w;
        NodeId id = inputs[i];
        if (_isBit[id]) {
            uint64_t *plane = planeOf(id);
            for (uint32_t wi = 0; wi < _words; ++wi) {
                uint64_t bits = 0;
                uint32_t base = wi << 6;
                uint32_t lim = std::min<uint32_t>(64u, w - base);
                for (uint32_t bit = 0; bit < lim; ++bit)
                    bits |= (lanesIn[base + bit] & 1ull) << bit;
                plane[wi] = bits;
            }
        } else {
            std::copy(lanesIn, lanesIn + w, widePtr(_wide, id));
        }
    }

    for (const Inst &inst : _program) {
        switch (inst.kind) {
          case Kind::Seed:
          case Kind::Skip:
            break;
          case Kind::ConstBit: {
            uint64_t *plane = planeOf(inst.dst);
            std::fill(plane, plane + _words,
                      (inst.imm & 1ull) ? ~0ull : 0ull);
            plane[_words - 1] &= _tailMask;
            break;
          }
          case Kind::ConstWide: {
            uint64_t *out = widePtr(_wide, inst.dst);
            std::fill(out, out + w, inst.imm);
            break;
          }
          case Kind::RegBit: {
            const uint64_t *state =
                _regBits.data() +
                static_cast<size_t>(_regSlot[inst.aux]) * _words;
            std::copy(state, state + _words, planeOf(inst.dst));
            break;
          }
          case Kind::RegWide: {
            const uint64_t *state =
                _regWide.data() +
                static_cast<size_t>(_regSlot[inst.aux]) * w;
            std::copy(state, state + w, widePtr(_wide, inst.dst));
            break;
          }
          case Kind::BitOp:
            evalBitOp(inst);
            break;
          case Kind::Wide:
          case Kind::Pack:
            evalGeneric(inst);
            break;
        }
    }

    // Change tracking and activity accounting: refsim's stamp-deduped
    // fanout walk with per-lane masks. A consumer's cost is active in
    // lane l iff any of its operands changed in lane l, so each
    // consumer accumulates the OR of its producers' change masks.
    std::fill(_changedCount.begin(), _changedCount.end(), 0);
    std::fill(_activeCost.begin(), _activeCost.end(), 0);
    _touched.clear();
    uint32_t stamp = ++_stampGen;
    size_t n = _nl.numNodes();
    for (NodeId id = 0; id < n; ++id) {
        uint64_t *m = _changedMask.data() +
                      static_cast<size_t>(id) * _words;
        uint64_t any = 0;
        if (_isBit[id]) {
            const uint64_t *cur = bitPtr(_bits, id);
            const uint64_t *prev = bitPtr(_prevBits, id);
            for (uint32_t wi = 0; wi < _words; ++wi) {
                m[wi] = cur[wi] ^ prev[wi];
                any |= m[wi];
            }
        } else {
            const uint64_t *cur = widePtr(_wide, id);
            const uint64_t *prev = widePtr(_prevWide, id);
            for (uint32_t wi = 0; wi < _words; ++wi) {
                uint64_t bits = 0;
                uint32_t base = wi << 6;
                uint32_t lim = std::min<uint32_t>(64u, w - base);
                for (uint32_t bit = 0; bit < lim; ++bit)
                    bits |= static_cast<uint64_t>(
                                cur[base + bit] != prev[base + bit])
                            << bit;
                m[wi] = bits;
                any |= bits;
            }
        }
        _changedLane0[id] = static_cast<uint8_t>(m[0] & 1ull);
        if (!any)
            continue;
        for (uint32_t wi = 0; wi < _words; ++wi) {
            uint64_t e = m[wi];
            while (e) {
                uint32_t l = (wi << 6) +
                             static_cast<uint32_t>(
                                 __builtin_ctzll(e));
                ++_changedCount[l];
                e &= e - 1;
            }
        }
        for (uint32_t f = _fanoutBase[id]; f < _fanoutBase[id + 1];
             ++f) {
            uint32_t consumer = _fanoutList[f];
            uint64_t *cm = _consumerMask.data() +
                           static_cast<size_t>(consumer) * _words;
            if (_activeStamp[consumer] != stamp) {
                _activeStamp[consumer] = stamp;
                std::copy(m, m + _words, cm);
                _touched.push_back(consumer);
            } else {
                for (uint32_t wi = 0; wi < _words; ++wi)
                    cm[wi] |= m[wi];
            }
        }
    }
    for (uint32_t consumer : _touched) {
        const uint64_t cost = _cost[consumer];
        const uint64_t *cm = _consumerMask.data() +
                             static_cast<size_t>(consumer) * _words;
        for (uint32_t wi = 0; wi < _words; ++wi) {
            uint64_t e = cm[wi];
            while (e) {
                uint32_t l = (wi << 6) +
                             static_cast<uint32_t>(
                                 __builtin_ctzll(e));
                _activeCost[l] += cost;
                e &= e - 1;
            }
        }
    }

    // Per-lane accumulation and statistics, in refsim's exact order
    // (same double ops, same stat names) so each lane's numbers are
    // byte-identical to a solo run.
    for (uint32_t l = 0; l < w; ++l) {
        if (_totalCost > 0)
            _activeCostSum[l] +=
                static_cast<double>(_activeCost[l]) /
                static_cast<double>(_totalCost);
        StatSet &st = _stats[l];
        st.inc("cycles");
        st.inc("nodesEvaluated", _order.size());
        st.inc("nodesChanged", _changedCount[l]);
        st.hist("changedNodes", _changedCount[l]);
        if (_totalCost > 0)
            st.sample("activeCostFrac",
                      static_cast<double>(_activeCost[l]) /
                          static_cast<double>(_totalCost));
    }
    ASH_OBS_EVENT(obs::EventKind::RefCycle, _cycle, 1, 0, 0,
                  _changedCount[0], _activeCost[0]);

    // Phase 2: clock edge. Latch registers from the just-computed
    // values, then apply memory writes in port order (later ports win
    // on same-address conflicts, independently per lane).
    const std::vector<rtl::RegInfo> &regs = _nl.regs();
    for (size_t r = 0; r < regs.size(); ++r) {
        NodeId next = regs[r].next;
        if (_regIsBit[r]) {
            const uint64_t *src = bitPtr(_bits, next);
            std::copy(src, src + _words,
                      _regBits.data() +
                          static_cast<size_t>(_regSlot[r]) * _words);
        } else {
            const uint64_t *src = widePtr(_wide, next);
            std::copy(src, src + w,
                      _regWide.data() +
                          static_cast<size_t>(_regSlot[r]) * w);
        }
    }

    for (size_t m = 0; m < _nl.memories().size(); ++m) {
        const uint64_t depth = _nl.memories()[m].depth;
        for (NodeId port : _nl.memories()[m].writePorts) {
            const Node &pn = _nl.node(port);
            NodeId addrN = pn.operands[0];
            NodeId dataN = pn.operands[1];
            NodeId enN = pn.operands[2];
            for (uint32_t l = 0; l < w; ++l) {
                if (!laneValue(l, enN))
                    continue;
                uint64_t addr = laneValue(l, addrN);
                if (addr < depth) {
                    _memState[m][static_cast<size_t>(l) * depth +
                                 addr] = laneValue(l, dataN);
                    _stats[l].inc("memWrites");
                }
            }
        }
    }

    ++_cycle;
}

void
LaneBatchEngine::packInputs(refsim::Stimulus &stimulus, uint64_t cycle,
                            uint64_t *dst)
{
    auto *ls = dynamic_cast<LaneStimulus *>(&stimulus);
    ASH_ASSERT(!ls || ls->lanes() == _w,
               "LaneStimulus width must match the engine width");
    const std::vector<NodeId> &inputs = _nl.inputs();
    for (uint32_t l = 0; l < _w; ++l) {
        std::fill(_inputBuf.begin(), _inputBuf.end(), 0);
        if (ls)
            ls->applyLane(l, cycle, _inputBuf);
        else
            stimulus.apply(cycle, _inputBuf);
        for (size_t i = 0; i < inputs.size(); ++i)
            dst[i * _w + l] = truncate(_inputBuf[i],
                                       _nl.node(inputs[i]).width);
    }
}

void
LaneBatchEngine::step(refsim::Stimulus &stimulus)
{
    packInputs(stimulus, _cycle, _stepInputs.data());
    stepCore(_stepInputs.data());
}

refsim::OutputTrace
LaneBatchEngine::run(refsim::Stimulus &stimulus, uint64_t cycles,
                     ckpt::CycleHook *hook)
{
    ASH_PROF_ZONE("run:lanes");
    const size_t numInputs = _nl.inputs().size();
    const size_t numOutputs = _nl.outputs().size();
    const std::vector<NodeId> &outs = _nl.outputs();
    for (refsim::OutputTrace &t : _laneTraces) {
        t.clear();
        t.reserve(cycles);
    }

    // Chunked pack -> eval -> demux: bounds staging memory, keeps the
    // prof zones at phase granularity (one zone per chunk, never per
    // cycle), and keeps the eval loop free of virtual stimulus calls.
    // Requires the stimulus to be a pure function of the cycle number
    // — the standing engine-interchange contract.
    constexpr uint64_t kChunk = 256;
    for (uint64_t done = 0; done < cycles;) {
        const uint64_t span = std::min(kChunk, cycles - done);
        {
            ASH_PROF_ZONE("lanes/pack");
            _chunkInputs.resize(span * numInputs * _w);
            for (uint64_t c = 0; c < span; ++c)
                packInputs(stimulus, _cycle + c,
                           _chunkInputs.data() + c * numInputs * _w);
        }
        {
            ASH_PROF_ZONE("lanes/eval");
            _chunkFrames.resize(span * numOutputs * _w);
            for (uint64_t c = 0; c < span; ++c) {
                guard::pollCancel();
                stepCore(_chunkInputs.data() + c * numInputs * _w);
                uint64_t *frame =
                    _chunkFrames.data() + c * numOutputs * _w;
                for (size_t oi = 0; oi < numOutputs; ++oi)
                    for (uint32_t l = 0; l < _w; ++l)
                        frame[oi * _w + l] = laneValue(l, outs[oi]);
                if (hook)
                    hook->onCycle(_cycle, *this);
            }
        }
        {
            ASH_PROF_ZONE("lanes/demux");
            for (uint64_t c = 0; c < span; ++c) {
                const uint64_t *frame =
                    _chunkFrames.data() + c * numOutputs * _w;
                for (uint32_t l = 0; l < _w; ++l) {
                    refsim::OutputFrame f(numOutputs);
                    for (size_t oi = 0; oi < numOutputs; ++oi)
                        f[oi] = frame[oi * _w + l];
                    _laneTraces[l].push_back(std::move(f));
                }
            }
        }
        done += span;
    }
    return _laneTraces[0];
}

uint64_t
LaneBatchEngine::laneValue(uint32_t lane, rtl::NodeId id) const
{
    if (_isBit[id])
        return (bitPtr(_bits, id)[lane >> 6] >> (lane & 63)) & 1ull;
    return widePtr(_wide, id)[lane];
}

refsim::OutputFrame
LaneBatchEngine::laneOutputFrame(uint32_t lane) const
{
    refsim::OutputFrame frame;
    frame.reserve(_nl.outputs().size());
    for (NodeId id : _nl.outputs())
        frame.push_back(laneValue(lane, id));
    return frame;
}

const refsim::OutputTrace &
LaneBatchEngine::laneTrace(uint32_t lane) const
{
    return _laneTraces.at(lane);
}

double
LaneBatchEngine::laneActivityFactor(uint32_t lane) const
{
    return _cycle == 0 ? 0.0
                       : _activeCostSum.at(lane) /
                             static_cast<double>(_cycle);
}

std::vector<uint8_t>
LaneBatchEngine::laneChanged(uint32_t lane) const
{
    std::vector<uint8_t> out(_nl.numNodes(), 0);
    for (NodeId id = 0; id < _nl.numNodes(); ++id)
        out[id] = static_cast<uint8_t>(
            (_changedMask[static_cast<size_t>(id) * _words +
                          (lane >> 6)] >>
             (lane & 63)) &
            1ull);
    return out;
}

// ---------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------

void
LaneBatchEngine::save(std::ostream &out) const
{
    // The engine's one tunable is the batch width, so W is the config
    // hash: restoring a W-wide snapshot into a differently-sized
    // engine fails cleanly at require().
    ckpt::SnapshotWriter w(out, engineName(),
                           ckpt::designFingerprint(_nl), _w);

    w.beginSection(kSecState);
    w.u64(_cycle);
    w.vec(_activeCostSum);
    w.vec(_bits);
    w.vec(_prevBits);
    w.vec(_wide);
    w.vec(_prevWide);
    w.vec(_changedMask);
    w.vec(_regBits);
    w.vec(_regWide);
    w.u64(_memState.size());
    for (const std::vector<uint64_t> &mem : _memState)
        w.vec(mem);
    w.endSection();

    w.beginSection(kSecStats);
    w.u64(_w);
    for (const StatSet &s : _stats)
        ckpt::saveStats(w, s);
    w.endSection();
}

void
LaneBatchEngine::restore(std::istream &in)
{
    ckpt::SnapshotReader r(in);
    r.require(engineName(), ckpt::designFingerprint(_nl), _w);

    r.section(kSecState);
    _cycle = r.u64();
    r.vec(_activeCostSum);
    r.vec(_bits);
    r.vec(_prevBits);
    r.vec(_wide);
    r.vec(_prevWide);
    r.vec(_changedMask);
    r.vec(_regBits);
    r.vec(_regWide);
    size_t n = _nl.numNodes();
    size_t bitRegs = 0;
    for (uint8_t b : _regIsBit)
        bitRegs += b;
    size_t wideRegs = _regIsBit.size() - bitRegs;
    if (_activeCostSum.size() != _w ||
        _bits.size() != _numBit * _words ||
        _prevBits.size() != _numBit * _words ||
        _wide.size() != _numWide * static_cast<size_t>(_w) ||
        _prevWide.size() != _numWide * static_cast<size_t>(_w) ||
        _changedMask.size() != n * _words ||
        _regBits.size() != bitRegs * _words ||
        _regWide.size() != wideRegs * static_cast<size_t>(_w))
        throw ckpt::SnapshotError("lanes state size mismatch");
    uint64_t mems = r.u64();
    if (mems != _nl.memories().size())
        throw ckpt::SnapshotError("lanes memory count mismatch");
    _memState.resize(mems);
    for (size_t m = 0; m < mems; ++m) {
        r.vec(_memState[m]);
        if (_memState[m].size() !=
            static_cast<size_t>(_nl.memories()[m].depth) * _w)
            throw ckpt::SnapshotError("lanes memory depth mismatch");
    }
    r.endSection();

    r.section(kSecStats);
    if (r.u64() != _w)
        throw ckpt::SnapshotError("lanes stats width mismatch");
    for (StatSet &s : _stats)
        ckpt::restoreStats(r, s);
    r.endSection();
    r.expectEnd();

    // Per-step scratch: rebuilt by the next step(). Stamps restart at
    // zero exactly as after reset(); the lane-0 change flags are a
    // projection of the saved masks.
    for (NodeId id = 0; id < n; ++id)
        _changedLane0[id] = static_cast<uint8_t>(
            _changedMask[static_cast<size_t>(id) * _words] & 1ull);
    std::fill(_activeStamp.begin(), _activeStamp.end(), 0);
    _stampGen = 0;
    _laneTraces.assign(_w, {});
}

} // namespace ash::lanes
