/**
 * @file
 * LaneBatchEngine: lane-batched functional simulation. One engine
 * evaluates W independent scenarios ("lanes") in lockstep per netlist
 * pass, amortizing the levelized traversal, instruction decode, and
 * scheduling work that a solo refsim run repeats per scenario (the
 * GSIM / LightningSimV2 observation: one compile/walk, W scenarios
 * per pass).
 *
 * Packing layout
 *   - 1-bit nets (width <= 1, which includes the width-0 MemWrite
 *     sinks) live in *bitplanes*: one u64 word holds the same net for
 *     64 lanes, so the whole batch evaluates bit-parallel with one
 *     logical op per 64 lanes. Unused tail bits of the last word are
 *     kept zero (tail mask).
 *   - Multi-bit nets live in *lane arrays*: node-major `[slot][lane]`
 *     u64 rows, so the per-op lane loop is a contiguous stream the
 *     compiler auto-vectorizes.
 *
 * Divergence and masks
 *   Lanes never branch: every lane evaluates every node every cycle
 *   (the same work a solo run does). Divergence shows up only in the
 *   *data* — per-node per-lane change masks — which drive per-lane
 *   activity accounting and change statistics, exactly mirroring the
 *   reference simulator's stamp-deduped fanout walk per lane.
 *
 * Determinism contract
 *   Lane l of a W-wide batch is byte-identical to the same scenario
 *   run solo through refsim: same OutputTrace, same StatSet names,
 *   values and recording order, same activityFactor (same double
 *   accumulation order), same changedLastCycle flags. The CycleEngine
 *   surface (value(), stats(), ...) is the lane-0 view; laneTrace()/
 *   laneStats()/laneValue() demultiplex the rest. Snapshots carry all
 *   W lanes and restore only into an engine of equal width (the
 *   snapshot config hash is W).
 */

#ifndef ASH_LANES_LANEBATCHENGINE_H
#define ASH_LANES_LANEBATCHENGINE_H

#include <cstdint>
#include <vector>

#include "common/Stats.h"
#include "lanes/ScenarioGen.h"
#include "refsim/CycleEngine.h"
#include "rtl/Netlist.h"

namespace ash::lanes {

class LaneBatchEngine : public refsim::CycleEngine
{
  public:
    /** Build a @p lanes -wide engine over @p netlist (lanes >= 1). */
    LaneBatchEngine(const rtl::Netlist &netlist, uint32_t lanes);

    /** Batch width W. */
    uint32_t lanes() const { return _w; }

    /**
     * Whether a compiled ash_jit lane kernel backs this engine. The
     * codegen hook (jit::laneKernelSupported()) reports no support
     * today, so this is always false and the built-in batched
     * interpreter runs — the documented fallback.
     */
    bool usesCompiledKernel() const { return _haveJitKernel; }

    // ----- CycleEngine (lane-0 view) ---------------------------------
    void step(refsim::Stimulus &stimulus) override;
    refsim::OutputTrace run(refsim::Stimulus &stimulus, uint64_t cycles,
                            ckpt::CycleHook *hook = nullptr) override;
    uint64_t value(rtl::NodeId id) const override
    {
        return laneValue(0, id);
    }
    refsim::OutputFrame outputFrame() const override
    {
        return laneOutputFrame(0);
    }
    uint64_t cycle() const override { return _cycle; }
    const std::vector<uint8_t> &changedLastCycle() const override
    {
        return _changedLane0;
    }
    double activityFactor() const override
    {
        return laneActivityFactor(0);
    }
    void reset() override;
    const StatSet &stats() const override { return _stats[0]; }

    // ----- Snapshotter ----------------------------------------------
    void save(std::ostream &out) const override;
    void restore(std::istream &in) override;
    const char *engineName() const override { return "lanes"; }

    // ----- Per-lane demultiplexing ----------------------------------
    /** Current value of @p id in @p lane (post-step). */
    uint64_t laneValue(uint32_t lane, rtl::NodeId id) const;

    /** Current output frame of @p lane. */
    refsim::OutputFrame laneOutputFrame(uint32_t lane) const;

    /** Output trace of @p lane recorded by the most recent run(). */
    const refsim::OutputTrace &laneTrace(uint32_t lane) const;

    /** Run statistics of @p lane (refsim names/order). */
    const StatSet &laneStats(uint32_t lane) const
    {
        return _stats.at(lane);
    }

    /** Activity factor of @p lane over the run so far. */
    double laneActivityFactor(uint32_t lane) const;

    /** Change flags of @p lane from the most recent step(). */
    std::vector<uint8_t> laneChanged(uint32_t lane) const;

  private:
    /** How a node is evaluated in the batched program. */
    enum class Kind : uint8_t {
        Seed,      ///< Input: packed from the stimulus before eval.
        Skip,      ///< MemWrite: effects applied at the clock edge.
        ConstBit,  ///< 1-bit Const: fill plane.
        ConstWide, ///< Multi-bit Const: fill lane array.
        RegBit,    ///< 1-bit Reg: copy plane from state.
        RegWide,   ///< Multi-bit Reg: copy lane array from state.
        BitOp,     ///< 1-bit op, 1-bit operands: bit-parallel words.
        Wide,      ///< Generic per-lane eval into a lane array.
        Pack,      ///< Generic per-lane eval packed into a plane.
    };

    /** One pre-decoded node, refsim's EvalInst plus the batch kind. */
    struct Inst
    {
        rtl::Op op;
        Kind kind;
        uint8_t width;
        uint16_t numOperands;
        rtl::NodeId dst;
        uint32_t aux;     ///< Reg index / memory id.
        uint32_t opBase;  ///< First operand in the pooled arrays.
        uint64_t imm;
    };

    void buildProgram();
    /** Evaluate one cycle from packed inputs `[input][lane]`. */
    void stepCore(const uint64_t *packedInputs);
    /** Pack @p stimulus at @p cycle into @p dst `[input][lane]`. */
    void packInputs(refsim::Stimulus &stimulus, uint64_t cycle,
                    uint64_t *dst);
    void evalBitOp(const Inst &inst);
    void evalGeneric(const Inst &inst);
    /** Lane values of operand @p k of @p inst (unpacks bit operands
     *  into scratch slot k). */
    const uint64_t *operandLanes(const Inst &inst, size_t k);
    uint64_t *planeOf(rtl::NodeId id) { return bitPtr(_bits, id); }
    uint64_t *bitPtr(std::vector<uint64_t> &buf, rtl::NodeId id)
    {
        return buf.data() +
               static_cast<size_t>(_slot[id]) * _words;
    }
    const uint64_t *bitPtr(const std::vector<uint64_t> &buf,
                           rtl::NodeId id) const
    {
        return buf.data() +
               static_cast<size_t>(_slot[id]) * _words;
    }
    uint64_t *widePtr(std::vector<uint64_t> &buf, rtl::NodeId id)
    {
        return buf.data() + static_cast<size_t>(_slot[id]) * _w;
    }
    const uint64_t *widePtr(const std::vector<uint64_t> &buf,
                            rtl::NodeId id) const
    {
        return buf.data() + static_cast<size_t>(_slot[id]) * _w;
    }

    const rtl::Netlist &_nl;
    uint32_t _w = 1;          ///< Lanes.
    uint32_t _words = 1;      ///< u64 words per bitplane.
    uint64_t _tailMask = ~0ull;

    std::vector<rtl::NodeId> _order;
    std::vector<Inst> _program;
    std::vector<uint32_t> _operandIdx;
    std::vector<uint8_t> _operandWidth;
    std::vector<uint8_t> _isBit;   ///< Per node: bitplane storage?
    std::vector<uint32_t> _slot;   ///< Per node: row in its storage.
    size_t _numBit = 0;
    size_t _numWide = 0;
    size_t _maxOperands = 0;

    // Double-buffered values: planes for 1-bit nets, node-major lane
    // arrays for multi-bit nets. MemWrite rows stay zero in both.
    std::vector<uint64_t> _bits, _prevBits;
    std::vector<uint64_t> _wide, _prevWide;

    // Architectural state, one row per register / W copies per memory
    // (lane-major: mem[lane * depth + addr]).
    std::vector<uint8_t> _regIsBit;
    std::vector<uint32_t> _regSlot;
    std::vector<uint64_t> _regBits;
    std::vector<uint64_t> _regWide;
    std::vector<std::vector<uint64_t>> _memState;

    // Activity accounting (refsim's stamp-deduped fanout walk, with
    // per-lane masks instead of scalar flags).
    std::vector<uint32_t> _fanoutBase;
    std::vector<uint32_t> _fanoutList;
    std::vector<uint32_t> _cost;
    uint64_t _totalCost = 0;
    std::vector<uint32_t> _activeStamp;
    uint32_t _stampGen = 0;
    std::vector<uint64_t> _changedMask;   ///< [node][word] lane bits.
    std::vector<uint64_t> _consumerMask;  ///< [node][word] scratch.
    std::vector<uint32_t> _touched;
    std::vector<uint8_t> _changedLane0;

    // Per-lane demultiplexed results.
    std::vector<StatSet> _stats;
    std::vector<double> _activeCostSum;
    std::vector<refsim::OutputTrace> _laneTraces;

    // Scratch.
    std::vector<uint64_t> _unpack;      ///< maxOperands x W.
    std::vector<uint64_t> _packScratch; ///< W.
    std::vector<const uint64_t *> _srcPtrs;
    std::vector<uint64_t> _inputBuf;
    std::vector<uint64_t> _stepInputs;
    std::vector<uint64_t> _chunkInputs;
    std::vector<uint64_t> _chunkFrames;
    std::vector<uint64_t> _changedCount; ///< Per lane, per cycle.
    std::vector<uint64_t> _activeCost;   ///< Per lane, per cycle.

    uint64_t _cycle = 0;
    bool _haveJitKernel = false;
};

} // namespace ash::lanes

#endif // ASH_LANES_LANEBATCHENGINE_H
