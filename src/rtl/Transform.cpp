#include "rtl/Transform.h"

#include <vector>

#include "common/Logging.h"

namespace ash::rtl {

Netlist
pruneDead(const Netlist &nl)
{
    // Mark live nodes: DFS from outputs, memory write ports, and every
    // register's next-value. Inputs and registers themselves are
    // always kept so the design interface is preserved.
    std::vector<uint8_t> live(nl.numNodes(), 0);
    std::vector<NodeId> stack;
    auto mark = [&](NodeId id) {
        if (!live[id]) {
            live[id] = 1;
            stack.push_back(id);
        }
    };
    for (NodeId id : nl.outputs())
        mark(id);
    for (const RegInfo &reg : nl.regs()) {
        mark(reg.node);
        mark(reg.next);
    }
    for (const MemInfo &mem : nl.memories()) {
        for (NodeId port : mem.writePorts)
            mark(port);
    }
    for (NodeId id : nl.inputs())
        mark(id);
    while (!stack.empty()) {
        NodeId id = stack.back();
        stack.pop_back();
        for (NodeId oper : nl.node(id).operands)
            mark(oper);
    }

    // Rebuild in original order with an id remap.
    Netlist out;
    std::vector<NodeId> remap(nl.numNodes(), invalidNode);

    // Memories first (ids are independent of nodes).
    for (const MemInfo &mem : nl.memories()) {
        MemId m = out.addMemory(mem.name, mem.width, mem.depth);
        if (!mem.init.empty())
            out.setMemoryInit(m, mem.init);
    }

    for (NodeId id = 0; id < nl.numNodes(); ++id) {
        if (!live[id])
            continue;
        const Node &n = nl.node(id);
        switch (n.op) {
          case Op::Input:
            remap[id] = out.addInput(nl.inputName(id), n.width);
            break;
          case Op::Const:
            remap[id] = out.addConst(n.width, n.imm);
            break;
          case Op::Reg: {
            const RegInfo &reg = nl.regs()[nl.regIndex(id)];
            remap[id] = out.addReg(reg.name, n.width, reg.init);
            break;
          }
          case Op::MemRead:
            remap[id] = out.addMemRead(n.mem, remap[n.operands[0]]);
            break;
          case Op::MemWrite:
            remap[id] = out.addMemWrite(n.mem, remap[n.operands[0]],
                                        remap[n.operands[1]],
                                        remap[n.operands[2]]);
            break;
          case Op::Output:
            remap[id] = out.addOutput(nl.outputName(id),
                                      remap[n.operands[0]]);
            break;
          default: {
            std::vector<NodeId> opers;
            opers.reserve(n.operands.size());
            for (NodeId oper : n.operands) {
                ASH_ASSERT(remap[oper] != invalidNode,
                           "operand of live node is dead");
                opers.push_back(remap[oper]);
            }
            remap[id] = out.addOp(n.op, n.width, std::move(opers),
                                  n.imm);
            break;
          }
        }
    }

    for (const RegInfo &reg : nl.regs())
        out.setRegNext(remap[reg.node], remap[reg.next]);

    return out;
}

} // namespace ash::rtl
