/**
 * @file
 * Netlist transforms. Currently: dead-node elimination, which removes
 * nodes unreachable from any sink (outputs, register next-values,
 * memory writes). The elaborator's constant folding leaves dead scratch
 * nodes behind; pruning keeps simulated cost honest.
 */

#ifndef ASH_RTL_TRANSFORM_H
#define ASH_RTL_TRANSFORM_H

#include "rtl/Netlist.h"

namespace ash::rtl {

/** Copy @p nl keeping only nodes live w.r.t. its sinks and inputs. */
Netlist pruneDead(const Netlist &nl);

} // namespace ash::rtl

#endif // ASH_RTL_TRANSFORM_H
