#include "rtl/Eval.h"

#include "common/Logging.h"

namespace ash::rtl {

uint64_t
evalCombOp(const Node &n, const Netlist &nl, const uint64_t *operand)
{
    auto ow = [&](size_t i) { return nl.node(n.operands[i]).width; };
    uint64_t result = 0;
    switch (n.op) {
      case Op::And: result = operand[0] & operand[1]; break;
      case Op::Or: result = operand[0] | operand[1]; break;
      case Op::Xor: result = operand[0] ^ operand[1]; break;
      case Op::Not: result = ~operand[0]; break;
      case Op::Add: result = operand[0] + operand[1]; break;
      case Op::Sub: result = operand[0] - operand[1]; break;
      case Op::Mul: result = operand[0] * operand[1]; break;
      case Op::Div:
        // Verilog semantics for division by zero are X; we define 0
        // (documented subset semantics, two-state logic).
        result = operand[1] ? operand[0] / operand[1] : 0;
        break;
      case Op::Mod:
        result = operand[1] ? operand[0] % operand[1] : 0;
        break;
      case Op::Shl:
        result = operand[1] >= n.width ? 0 : operand[0] << operand[1];
        break;
      case Op::LShr:
        result = operand[1] >= ow(0) ? 0 : operand[0] >> operand[1];
        break;
      case Op::AShr: {
        int64_t v = signExtend(operand[0], ow(0));
        uint64_t sh = operand[1] >= ow(0) ? ow(0) - 1 : operand[1];
        result = static_cast<uint64_t>(v >> sh);
        break;
      }
      case Op::Eq: result = operand[0] == operand[1]; break;
      case Op::Ne: result = operand[0] != operand[1]; break;
      case Op::Lt: result = operand[0] < operand[1]; break;
      case Op::Le: result = operand[0] <= operand[1]; break;
      case Op::Gt: result = operand[0] > operand[1]; break;
      case Op::Ge: result = operand[0] >= operand[1]; break;
      case Op::SLt:
        result = signExtend(operand[0], ow(0)) <
                 signExtend(operand[1], ow(1));
        break;
      case Op::SLe:
        result = signExtend(operand[0], ow(0)) <=
                 signExtend(operand[1], ow(1));
        break;
      case Op::SGt:
        result = signExtend(operand[0], ow(0)) >
                 signExtend(operand[1], ow(1));
        break;
      case Op::SGe:
        result = signExtend(operand[0], ow(0)) >=
                 signExtend(operand[1], ow(1));
        break;
      case Op::Mux:
        result = operand[0] ? operand[1] : operand[2];
        break;
      case Op::Concat: {
        // Operands are MSB-first.
        for (size_t i = 0; i < n.operands.size(); ++i) {
            result = (result << ow(i)) | truncate(operand[i], ow(i));
        }
        break;
      }
      case Op::Slice:
        result = operand[0] >> n.imm;
        break;
      case Op::ZExt:
        result = operand[0];
        break;
      case Op::SExt:
        result = static_cast<uint64_t>(signExtend(operand[0], ow(0)));
        break;
      case Op::RedAnd:
        result = truncate(operand[0], ow(0)) == mask64(ow(0));
        break;
      case Op::RedOr:
        result = operand[0] != 0;
        break;
      case Op::RedXor:
        result = __builtin_parityll(operand[0]);
        break;
      case Op::Output:
        result = operand[0];
        break;
      default:
        panic("evalCombOp: node kind %s needs external state",
              opName(n.op));
    }
    return truncate(result, n.width);
}

} // namespace ash::rtl
