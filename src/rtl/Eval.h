/**
 * @file
 * Pure-value evaluation of combinational IR nodes. Shared by the
 * reference simulator and by the functional side of the ASH chip model
 * so both execute identical semantics (this is what makes the
 * end-to-end equivalence tests meaningful).
 */

#ifndef ASH_RTL_EVAL_H
#define ASH_RTL_EVAL_H

#include <cstdint>

#include "rtl/Netlist.h"

namespace ash::rtl {

/**
 * Evaluate a combinational node given its operand values (already
 * truncated to their widths). Not valid for sources, MemRead, or
 * MemWrite, which need external state.
 *
 * @param n        The node to evaluate.
 * @param nl       The owning netlist (for operand widths).
 * @param operand  Operand values, in operand order.
 * @return The result, truncated to n.width bits.
 */
uint64_t evalCombOp(const Node &n, const Netlist &nl,
                    const uint64_t *operand);

} // namespace ash::rtl

#endif // ASH_RTL_EVAL_H
