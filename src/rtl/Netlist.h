/**
 * @file
 * The RTL netlist intermediate representation. This is ASH's equivalent
 * of the dataflow-style IR Verilator produces from Verilog (Sec 2.1):
 * a directed graph of combinational operation nodes plus clocked
 * registers and synchronous-write / asynchronous-read memories. The
 * Verilog frontend lowers into this IR; the reference simulator, the
 * dataflow-graph layer, and the ASH compiler all consume it.
 *
 * All values are 1-64 bits wide and carried in uint64_t words; the
 * frontend rejects wider signals (documented subset restriction).
 */

#ifndef ASH_RTL_NETLIST_H
#define ASH_RTL_NETLIST_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/BitUtils.h"

namespace ash::rtl {

/** Index of a node within its Netlist. */
using NodeId = uint32_t;
/** Index of a memory within its Netlist. */
using MemId = uint32_t;

constexpr NodeId invalidNode = ~0u;

/** Operation kinds. Source nodes have no operands. */
enum class Op : uint8_t {
    // Sources.
    Input,   ///< Design input; value supplied by the stimulus each cycle.
    Const,   ///< Constant; value in Node::imm.
    Reg,     ///< Clocked register; current value, next set via setRegNext.

    // Bitwise / logical.
    And, Or, Xor, Not,
    // Arithmetic (unsigned two's complement within width).
    Add, Sub, Mul, Div, Mod,
    // Shifts: operand 0 shifted by operand 1.
    Shl, LShr, AShr,
    // Comparisons (1-bit results). S-prefixed are signed.
    Eq, Ne, Lt, Le, Gt, Ge, SLt, SLe, SGt, SGe,
    // Ternary select: operands are (sel, ifTrue, ifFalse).
    Mux,
    // Concatenation: operands MSB-first; width is the sum of widths.
    Concat,
    // Bit slice: operand 0, least significant bit in Node::imm.
    Slice,
    // Width extension.
    ZExt, SExt,
    // Reductions to 1 bit.
    RedAnd, RedOr, RedXor,

    // Memory ports. Reads are combinational (see the memory state of
    // the start of the cycle); writes apply at the clock edge.
    MemRead,   ///< operands: (addr); Node::mem names the memory.
    MemWrite,  ///< operands: (addr, data, enable); a sink node.

    // Design output: operand 0 is the driven value; a sink node.
    Output,
};

/** Printable op name. */
const char *opName(Op op);

/** Number of distinct Op values (for table sizing). */
constexpr size_t numOps = static_cast<size_t>(Op::Output) + 1;

/** One IR node. */
struct Node
{
    Op op = Op::Const;
    uint8_t width = 1;          ///< Result width in bits (0 for sinks).
    MemId mem = ~0u;            ///< Memory id for MemRead/MemWrite.
    uint64_t imm = 0;           ///< Const value / Slice lsb / Reg init.
    std::vector<NodeId> operands;

    bool
    isSource() const
    {
        return op == Op::Input || op == Op::Const || op == Op::Reg;
    }
    bool isSink() const { return op == Op::MemWrite || op == Op::Output; }
};

/** Register bookkeeping: the Reg node and the node driving its next value. */
struct RegInfo
{
    NodeId node = invalidNode;
    NodeId next = invalidNode;   ///< Value latched at each clock edge.
    uint64_t init = 0;
    std::string name;
};

/** Memory bookkeeping. */
struct MemInfo
{
    std::string name;
    uint8_t width = 1;
    uint32_t depth = 0;
    std::vector<uint64_t> init;          ///< Optional initial contents.
    std::vector<NodeId> writePorts;      ///< MemWrite nodes, port order.
};

/**
 * A flattened synchronous design: one implicit clock, combinational
 * nodes, registers, and memories. Built either by the Verilog frontend
 * or directly through this builder API (see examples/custom_circuit).
 */
class Netlist
{
  public:
    /// @name Builder interface
    /// @{
    NodeId addInput(const std::string &name, unsigned width);
    NodeId addConst(unsigned width, uint64_t value);
    NodeId addReg(const std::string &name, unsigned width,
                  uint64_t init = 0);
    /** Connect the value latched into @p reg at each clock edge. */
    void setRegNext(NodeId reg, NodeId next);
    /** Add a combinational operation; width rules are validated. */
    NodeId addOp(Op op, unsigned width, std::vector<NodeId> operands,
                 uint64_t imm = 0);
    MemId addMemory(const std::string &name, unsigned width,
                    uint32_t depth);
    /** Set initial memory contents (size must be <= depth). */
    void setMemoryInit(MemId mem, std::vector<uint64_t> init);
    NodeId addMemRead(MemId mem, NodeId addr);
    NodeId addMemWrite(MemId mem, NodeId addr, NodeId data, NodeId enable);
    NodeId addOutput(const std::string &name, NodeId value);
    /// @}

    /// @name Queries
    /// @{
    const Node &node(NodeId id) const { return _nodes[id]; }
    size_t numNodes() const { return _nodes.size(); }
    const std::vector<NodeId> &inputs() const { return _inputs; }
    const std::vector<NodeId> &outputs() const { return _outputs; }
    const std::vector<RegInfo> &regs() const { return _regs; }
    const std::vector<MemInfo> &memories() const { return _memories; }
    const std::string &inputName(NodeId id) const;
    const std::string &outputName(NodeId id) const;
    /** Register index of a Reg node. */
    size_t regIndex(NodeId id) const;
    /// @}

    /**
     * Check structural invariants: operand widths, acyclic combinational
     * logic, every register driven. Calls ash::fatal() on violations.
     */
    void validate() const;

    /**
     * Topological order over all nodes (sources first, sinks last).
     * Fails if combinational logic is cyclic.
     */
    std::vector<NodeId> topoOrder() const;

    /** Sum of per-node instruction costs (see Cost.h). */
    uint64_t totalCost() const;

  private:
    NodeId pushNode(Node n);
    void checkWidths(const Node &n, NodeId id) const;

    std::vector<Node> _nodes;
    std::vector<NodeId> _inputs;
    std::vector<NodeId> _outputs;
    std::vector<RegInfo> _regs;
    std::vector<MemInfo> _memories;
    std::vector<std::string> _inputNames;   // parallel to _inputs
    std::vector<std::string> _outputNames;  // parallel to _outputs
    std::vector<uint32_t> _regIndexOf;      // node id -> reg index
};

} // namespace ash::rtl

#endif // ASH_RTL_NETLIST_H
