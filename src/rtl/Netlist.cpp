#include "rtl/Netlist.h"

#include <algorithm>

#include "common/Logging.h"
#include "rtl/Cost.h"

namespace ash::rtl {

const char *
opName(Op op)
{
    switch (op) {
      case Op::Input: return "Input";
      case Op::Const: return "Const";
      case Op::Reg: return "Reg";
      case Op::And: return "And";
      case Op::Or: return "Or";
      case Op::Xor: return "Xor";
      case Op::Not: return "Not";
      case Op::Add: return "Add";
      case Op::Sub: return "Sub";
      case Op::Mul: return "Mul";
      case Op::Div: return "Div";
      case Op::Mod: return "Mod";
      case Op::Shl: return "Shl";
      case Op::LShr: return "LShr";
      case Op::AShr: return "AShr";
      case Op::Eq: return "Eq";
      case Op::Ne: return "Ne";
      case Op::Lt: return "Lt";
      case Op::Le: return "Le";
      case Op::Gt: return "Gt";
      case Op::Ge: return "Ge";
      case Op::SLt: return "SLt";
      case Op::SLe: return "SLe";
      case Op::SGt: return "SGt";
      case Op::SGe: return "SGe";
      case Op::Mux: return "Mux";
      case Op::Concat: return "Concat";
      case Op::Slice: return "Slice";
      case Op::ZExt: return "ZExt";
      case Op::SExt: return "SExt";
      case Op::RedAnd: return "RedAnd";
      case Op::RedOr: return "RedOr";
      case Op::RedXor: return "RedXor";
      case Op::MemRead: return "MemRead";
      case Op::MemWrite: return "MemWrite";
      case Op::Output: return "Output";
    }
    return "?";
}

NodeId
Netlist::pushNode(Node n)
{
    NodeId id = static_cast<NodeId>(_nodes.size());
    _nodes.push_back(std::move(n));
    _regIndexOf.push_back(~0u);
    return id;
}

NodeId
Netlist::addInput(const std::string &name, unsigned width)
{
    ASH_ASSERT(width >= 1 && width <= maxSignalWidth);
    Node n;
    n.op = Op::Input;
    n.width = static_cast<uint8_t>(width);
    NodeId id = pushNode(std::move(n));
    _inputs.push_back(id);
    _inputNames.push_back(name);
    return id;
}

NodeId
Netlist::addConst(unsigned width, uint64_t value)
{
    ASH_ASSERT(width >= 1 && width <= maxSignalWidth);
    Node n;
    n.op = Op::Const;
    n.width = static_cast<uint8_t>(width);
    n.imm = truncate(value, width);
    return pushNode(std::move(n));
}

NodeId
Netlist::addReg(const std::string &name, unsigned width, uint64_t init)
{
    ASH_ASSERT(width >= 1 && width <= maxSignalWidth);
    Node n;
    n.op = Op::Reg;
    n.width = static_cast<uint8_t>(width);
    n.imm = truncate(init, width);
    NodeId id = pushNode(std::move(n));
    _regIndexOf[id] = static_cast<uint32_t>(_regs.size());
    RegInfo info;
    info.node = id;
    info.init = truncate(init, width);
    info.name = name;
    _regs.push_back(std::move(info));
    return id;
}

void
Netlist::setRegNext(NodeId reg, NodeId next)
{
    ASH_ASSERT(reg < _nodes.size() && _nodes[reg].op == Op::Reg);
    ASH_ASSERT(next < _nodes.size());
    ASH_ASSERT(_nodes[next].width == _nodes[reg].width,
               "register '%s': next width %u != reg width %u",
               _regs[_regIndexOf[reg]].name.c_str(), _nodes[next].width,
               _nodes[reg].width);
    _regs[_regIndexOf[reg]].next = next;
}

NodeId
Netlist::addOp(Op op, unsigned width, std::vector<NodeId> operands,
               uint64_t imm)
{
    ASH_ASSERT(width <= maxSignalWidth);
    Node n;
    n.op = op;
    n.width = static_cast<uint8_t>(width);
    n.imm = imm;
    n.operands = std::move(operands);
    for (NodeId oper : n.operands)
        ASH_ASSERT(oper < _nodes.size(), "operand out of range");
    NodeId id = pushNode(std::move(n));
    checkWidths(_nodes[id], id);
    return id;
}

MemId
Netlist::addMemory(const std::string &name, unsigned width, uint32_t depth)
{
    ASH_ASSERT(width >= 1 && width <= maxSignalWidth);
    ASH_ASSERT(depth >= 1);
    MemInfo info;
    info.name = name;
    info.width = static_cast<uint8_t>(width);
    info.depth = depth;
    _memories.push_back(std::move(info));
    return static_cast<MemId>(_memories.size() - 1);
}

void
Netlist::setMemoryInit(MemId mem, std::vector<uint64_t> init)
{
    ASH_ASSERT(mem < _memories.size());
    ASH_ASSERT(init.size() <= _memories[mem].depth);
    for (uint64_t &v : init)
        v = truncate(v, _memories[mem].width);
    _memories[mem].init = std::move(init);
}

NodeId
Netlist::addMemRead(MemId mem, NodeId addr)
{
    ASH_ASSERT(mem < _memories.size());
    Node n;
    n.op = Op::MemRead;
    n.width = _memories[mem].width;
    n.mem = mem;
    n.operands = {addr};
    return pushNode(std::move(n));
}

NodeId
Netlist::addMemWrite(MemId mem, NodeId addr, NodeId data, NodeId enable)
{
    ASH_ASSERT(mem < _memories.size());
    ASH_ASSERT(_nodes[data].width == _memories[mem].width,
               "memory '%s': write data width %u != mem width %u",
               _memories[mem].name.c_str(), _nodes[data].width,
               _memories[mem].width);
    ASH_ASSERT(_nodes[enable].width == 1);
    Node n;
    n.op = Op::MemWrite;
    n.width = 0;
    n.mem = mem;
    n.operands = {addr, data, enable};
    NodeId id = pushNode(std::move(n));
    _memories[mem].writePorts.push_back(id);
    return id;
}

NodeId
Netlist::addOutput(const std::string &name, NodeId value)
{
    ASH_ASSERT(value < _nodes.size());
    Node n;
    n.op = Op::Output;
    n.width = _nodes[value].width;
    n.operands = {value};
    NodeId id = pushNode(std::move(n));
    _outputs.push_back(id);
    _outputNames.push_back(name);
    return id;
}

const std::string &
Netlist::inputName(NodeId id) const
{
    for (size_t i = 0; i < _inputs.size(); ++i) {
        if (_inputs[i] == id)
            return _inputNames[i];
    }
    panic("node %u is not an input", id);
}

const std::string &
Netlist::outputName(NodeId id) const
{
    for (size_t i = 0; i < _outputs.size(); ++i) {
        if (_outputs[i] == id)
            return _outputNames[i];
    }
    panic("node %u is not an output", id);
}

size_t
Netlist::regIndex(NodeId id) const
{
    ASH_ASSERT(id < _nodes.size() && _nodes[id].op == Op::Reg);
    return _regIndexOf[id];
}

void
Netlist::checkWidths(const Node &n, NodeId id) const
{
    auto w = [&](size_t i) { return _nodes[n.operands[i]].width; };
    auto expectOperands = [&](size_t count) {
        ASH_ASSERT(n.operands.size() == count,
                   "%s node %u: expected %zu operands, got %zu",
                   opName(n.op), id, count, n.operands.size());
    };
    switch (n.op) {
      case Op::And: case Op::Or: case Op::Xor:
      case Op::Add: case Op::Sub: case Op::Mul:
      case Op::Div: case Op::Mod:
        expectOperands(2);
        ASH_ASSERT(w(0) == n.width && w(1) == n.width,
                   "%s node %u: operand widths %u,%u vs result %u",
                   opName(n.op), id, w(0), w(1), n.width);
        break;
      case Op::Not:
        expectOperands(1);
        ASH_ASSERT(w(0) == n.width);
        break;
      case Op::Shl: case Op::LShr: case Op::AShr:
        expectOperands(2);
        ASH_ASSERT(w(0) == n.width);
        break;
      case Op::Eq: case Op::Ne:
      case Op::Lt: case Op::Le: case Op::Gt: case Op::Ge:
      case Op::SLt: case Op::SLe: case Op::SGt: case Op::SGe:
        expectOperands(2);
        ASH_ASSERT(n.width == 1 && w(0) == w(1));
        break;
      case Op::Mux:
        expectOperands(3);
        ASH_ASSERT(w(0) == 1 && w(1) == n.width && w(2) == n.width);
        break;
      case Op::Concat: {
        ASH_ASSERT(!n.operands.empty());
        unsigned total = 0;
        for (size_t i = 0; i < n.operands.size(); ++i)
            total += w(i);
        ASH_ASSERT(total == n.width,
                   "Concat node %u: operand widths sum %u != %u", id,
                   total, n.width);
        break;
      }
      case Op::Slice:
        expectOperands(1);
        ASH_ASSERT(n.imm + n.width <= w(0),
                   "Slice node %u: [%u +: %u] out of %u-bit operand", id,
                   static_cast<unsigned>(n.imm), n.width, w(0));
        break;
      case Op::ZExt: case Op::SExt:
        expectOperands(1);
        ASH_ASSERT(w(0) <= n.width);
        break;
      case Op::RedAnd: case Op::RedOr: case Op::RedXor:
        expectOperands(1);
        ASH_ASSERT(n.width == 1);
        break;
      case Op::MemRead:
        expectOperands(1);
        break;
      case Op::MemWrite:
        expectOperands(3);
        break;
      case Op::Output:
        expectOperands(1);
        break;
      case Op::Input: case Op::Const: case Op::Reg:
        expectOperands(0);
        break;
    }
}

std::vector<NodeId>
Netlist::topoOrder() const
{
    // Kahn's algorithm over combinational edges. Sources (Input, Const,
    // Reg) have no operands, so they seed the frontier.
    std::vector<uint32_t> pending(_nodes.size());
    std::vector<std::vector<NodeId>> users(_nodes.size());
    for (NodeId id = 0; id < _nodes.size(); ++id) {
        pending[id] = static_cast<uint32_t>(_nodes[id].operands.size());
        for (NodeId oper : _nodes[id].operands)
            users[oper].push_back(id);
    }

    std::vector<NodeId> order;
    order.reserve(_nodes.size());
    std::vector<NodeId> frontier;
    for (NodeId id = 0; id < _nodes.size(); ++id) {
        if (pending[id] == 0)
            frontier.push_back(id);
    }
    while (!frontier.empty()) {
        NodeId id = frontier.back();
        frontier.pop_back();
        order.push_back(id);
        for (NodeId user : users[id]) {
            if (--pending[user] == 0)
                frontier.push_back(user);
        }
    }
    if (order.size() != _nodes.size())
        fatal("combinational cycle detected in netlist (%zu of %zu nodes "
              "ordered)", order.size(), _nodes.size());
    return order;
}

void
Netlist::validate() const
{
    for (const RegInfo &reg : _regs) {
        if (reg.next == invalidNode)
            fatal("register '%s' has no next-value driver",
                  reg.name.c_str());
    }
    // topoOrder() fatals on combinational cycles.
    (void)topoOrder();
}

uint64_t
Netlist::totalCost() const
{
    uint64_t total = 0;
    for (const Node &n : _nodes)
        total += nodeCost(n);
    return total;
}

} // namespace ash::rtl
