/**
 * @file
 * Per-node cost model. The ASH compiler and all timing models measure
 * work in "host instructions": the number of instructions a compiled
 * simulator would execute to evaluate one IR node (Sec 4.3.2 estimates
 * node cost as the number of instructions within it). Code footprint is
 * derived from the same model.
 */

#ifndef ASH_RTL_COST_H
#define ASH_RTL_COST_H

#include "rtl/Netlist.h"

namespace ash::rtl {

/** Instructions to evaluate @p n once. */
inline uint32_t
nodeCost(const Node &n)
{
    switch (n.op) {
      case Op::Input:
      case Op::Const:
      case Op::Reg:
        return 0;          // Sources: value already in a register/arg.
      case Op::Mul:
        return 3;
      case Op::Div:
      case Op::Mod:
        return 12;
      case Op::Mux:
        return 2;          // Compare + conditional move.
      case Op::Concat:
        return static_cast<uint32_t>(2 * n.operands.size() - 1);
      case Op::MemRead:
      case Op::MemWrite:
        return 4;          // Address arithmetic + load/store + mask.
      case Op::RedAnd:
      case Op::RedOr:
      case Op::RedXor:
        return 2;
      case Op::Output:
        return 1;
      default:
        return 1;          // Single ALU instruction.
    }
}

/**
 * Code bytes the generated simulator spends on @p n (x86-64-like
 * density: ~4.5 bytes/instruction plus per-node addressing overhead).
 */
inline uint32_t
nodeCodeBytes(const Node &n)
{
    uint32_t instrs = nodeCost(n);
    return instrs == 0 ? 0 : instrs * 5 + 8;
}

} // namespace ash::rtl

#endif // ASH_RTL_COST_H
