/**
 * @file
 * ash_obs event tracer: a low-overhead, compile-out-able recorder of
 * typed per-tile simulation events (task dispatch/commit/abort, TMU
 * queue traffic, NoC sends, cache misses, prefetches) with an
 * exporter to Chrome trace_event JSON, so timelines open directly in
 * chrome://tracing or https://ui.perfetto.dev.
 *
 * Design constraints, in priority order:
 *  1. Zero cost when compiled out: building with -DASH_OBS_TRACE=0
 *     turns every ASH_OBS_EVENT() into ((void)0).
 *  2. Near-zero cost when compiled in but disabled (the default):
 *     one inline check of a plain bool; no call, no allocation.
 *  3. Bounded memory when enabled: events land in fixed-capacity
 *     per-tile ring buffers; overflow overwrites the oldest events of
 *     that tile and is counted, never reallocated.
 *
 * Each simulator instance is single-threaded, and a Tracer INSTANCE
 * inherits that assumption: record() is not thread-safe. Host-
 * parallel sweeps (src/exec) stay safe through per-thread redirect:
 * global() returns the thread's active tracer when one is installed
 * (setThreadActive), so every concurrent job records into its own
 * private buffers, which the sweep's merge barrier folds into the
 * process tracer in submission order (mergeFrom).
 *
 * Timestamps are simulated chip cycles; the exporter maps one cycle
 * to one microsecond so Perfetto's time axis reads directly in
 * cycles.
 */

#ifndef ASH_OBS_TRACE_H
#define ASH_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

/** Compile-time master switch; see file header. */
#ifndef ASH_OBS_TRACE
#define ASH_OBS_TRACE 1
#endif

namespace ash::obs {

/** Event taxonomy (DESIGN.md "Observability" documents each). */
enum class EventKind : uint8_t {
    TaskDispatch,   ///< Task instance starts executing (has duration).
    TaskCommit,     ///< Instance committed (instant).
    TaskAbort,      ///< Instance aborted; cause in TraceEvent::cause.
    TmuEnqueue,     ///< Descriptor enqueued into a tile's AQ.
    TmuDequeue,     ///< Descriptor removed from an AQ (cancel/abort).
    AqSpill,        ///< AQ overflow spilled a bundle to DRAM.
    NocSend,        ///< Message traversing the mesh (has duration).
    L1iMiss,        ///< Instruction fetch missed L1I.
    L1dMiss,        ///< Data access missed L1D.
    L2Miss,         ///< Access missed the tile's L2.
    DramAccess,     ///< Access reached a DRAM controller.
    Prefetch,       ///< Task-driven instruction prefetch issued.
    Stimulus,       ///< Stimulus descriptor injected.
    VtCommitRound,  ///< Virtual-Time bulk-commit round (instant).
    RefCycle,       ///< Reference simulator evaluated one cycle.
    BaselineWave,   ///< Baseline executed one depth wave (duration).
    Checkpoint,     ///< Snapshot saved (arg0=cycle) or restored (arg1=1).
};

/** Why a speculative instance was rolled back. */
enum class AbortCause : uint8_t {
    None = 0,
    LateArg,        ///< Argument arrived after speculative dispatch.
    ReadVersion,    ///< Read-time version-tag conflict.
    Cascade,        ///< Parent rollback cancelled a consumed input.
    SameTaskOrder,  ///< Older instance of the same task dispatched.
    Other,
};

/** Map an engine-internal reason string to an AbortCause. */
AbortCause abortCauseOf(const char *reason);
/** Short printable names for export. */
const char *kindName(EventKind k);
const char *causeName(AbortCause c);

/** One recorded event; fixed-size POD kept small for ring storage. */
struct TraceEvent
{
    uint64_t ts = 0;        ///< Start time, simulated chip cycles.
    uint64_t arg0 = 0;      ///< Kind-specific (task id, address, ...).
    uint64_t arg1 = 0;      ///< Kind-specific (instance, bytes, ...).
    uint32_t dur = 0;       ///< Duration in cycles; 0 = instant.
    uint32_t tile = 0;      ///< Originating tile (exporter "pid").
    uint16_t core = 0;      ///< Core within tile (exporter "tid").
    EventKind kind = EventKind::TaskDispatch;
    uint8_t cause = 0;      ///< AbortCause for TaskAbort, else 0.
};

/**
 * The process-wide tracer. Everything funnels through global() so
 * instrumentation points don't need plumbing; benches enable it from
 * --trace, export, and clear between runs if they want per-run files.
 */
class Tracer
{
  public:
    /**
     * The tracer instrumentation points should record into: this
     * thread's active tracer if one is installed (parallel sweep
     * jobs), else the process-wide tracer.
     */
    static Tracer &global();

    /** The process-wide tracer, ignoring any thread redirect. */
    static Tracer &process();

    /** Redirect this thread's global() to @p t; nullptr restores. */
    static void setThreadActive(Tracer *t);

    /** Hot-path guard; inline, branch-predictable, no call. */
    static bool
    enabled()
    {
        return _sEnabled.load(std::memory_order_relaxed);
    }

    /** Turn recording on/off (off drops events, keeps buffers). */
    static void
    setEnabled(bool on)
    {
        _sEnabled.store(on, std::memory_order_relaxed);
    }

    /** Ring capacity per tile (events); applies on next record. */
    void setCapacityPerTile(size_t cap);
    size_t capacityPerTile() const { return _capPerTile; }

    /** Append one event to its tile's ring. */
    void record(const TraceEvent &e);

    /** Total events currently buffered across all tiles. */
    size_t eventCount() const;
    /** Events overwritten due to ring wrap since the last clear(). */
    uint64_t droppedCount() const { return _dropped; }
    /**
     * Per-tile ring-overflow counts, indexed by tile, so a report can
     * say WHICH tile's ring wrapped (one hot tile overflowing is a
     * very different story from uniform pressure). Tiles that never
     * dropped hold 0; the vector spans [0, maxTile()].
     */
    std::vector<uint64_t> droppedByTile() const;
    /** Highest tile index seen so far, or -1 if none. */
    int maxTile() const;

    /** Drop all buffered events (capacity and enable state kept). */
    void clear();

    /**
     * Append @p other's buffered events into this tracer's rings,
     * tile by tile in @p other's ring order, honoring this tracer's
     * capacity; dropped counts accumulate. The sweep merge barrier
     * uses this to fold per-job tracers into the process tracer in
     * submission order, reproducing what a sequential run would have
     * recorded.
     */
    void mergeFrom(const Tracer &other);

    /**
     * Buffered events of all tiles as one Chrome trace_event JSON
     * document ({"traceEvents": [...], ...}).
     */
    std::string toChromeJson() const;

    /** Write toChromeJson() to @p path; returns false on I/O error. */
    bool exportChromeJson(const std::string &path) const;

  private:
    /** Fixed-capacity overwrite-oldest ring of one tile's events. */
    struct Ring
    {
        std::vector<TraceEvent> buf;
        size_t next = 0;     ///< Insertion slot once buf is full.
        bool wrapped = false;
        uint64_t dropped = 0;   ///< Events this ring overwrote.
    };

    Ring &ringFor(uint32_t tile);
    void appendRing(const Ring &ring, std::vector<TraceEvent> &out)
        const;

    std::vector<Ring> _rings;   ///< Indexed by tile.
    size_t _capPerTile = 1 << 15;
    uint64_t _dropped = 0;

    static inline std::atomic<bool> _sEnabled{false};
};

/** Convenience builder used by the instrumentation macro. */
inline TraceEvent
makeEvent(EventKind kind, uint64_t ts, uint32_t dur, uint32_t tile,
          uint16_t core, uint64_t arg0, uint64_t arg1,
          AbortCause cause = AbortCause::None)
{
    TraceEvent e;
    e.ts = ts;
    e.dur = dur;
    e.tile = tile;
    e.core = core;
    e.kind = kind;
    e.arg0 = arg0;
    e.arg1 = arg1;
    e.cause = static_cast<uint8_t>(cause);
    return e;
}

} // namespace ash::obs

/**
 * Instrumentation point. Arguments are those of obs::makeEvent() and
 * are NOT evaluated unless tracing is compiled in and enabled, so
 * call sites may pass mildly expensive expressions.
 */
#if ASH_OBS_TRACE
#define ASH_OBS_EVENT(...)                                             \
    do {                                                               \
        if (::ash::obs::Tracer::enabled()) {                           \
            ::ash::obs::Tracer::global().record(                       \
                ::ash::obs::makeEvent(__VA_ARGS__));                   \
        }                                                              \
    } while (0)
#else
#define ASH_OBS_EVENT(...) ((void)0)
#endif

#endif // ASH_OBS_TRACE_H
