#include "obs/Trace.h"

#include <cstdio>
#include <cstring>

#include "common/Json.h"

namespace ash::obs {

AbortCause
abortCauseOf(const char *reason)
{
    if (!reason)
        return AbortCause::None;
    if (std::strcmp(reason, "late-arg") == 0)
        return AbortCause::LateArg;
    if (std::strcmp(reason, "read-version") == 0)
        return AbortCause::ReadVersion;
    if (std::strcmp(reason, "cascade") == 0)
        return AbortCause::Cascade;
    if (std::strcmp(reason, "same-task-order") == 0)
        return AbortCause::SameTaskOrder;
    return AbortCause::Other;
}

const char *
kindName(EventKind k)
{
    switch (k) {
      case EventKind::TaskDispatch:  return "task.dispatch";
      case EventKind::TaskCommit:    return "task.commit";
      case EventKind::TaskAbort:     return "task.abort";
      case EventKind::TmuEnqueue:    return "tmu.enqueue";
      case EventKind::TmuDequeue:    return "tmu.dequeue";
      case EventKind::AqSpill:       return "tmu.spill";
      case EventKind::NocSend:       return "noc.send";
      case EventKind::L1iMiss:       return "cache.l1i_miss";
      case EventKind::L1dMiss:       return "cache.l1d_miss";
      case EventKind::L2Miss:        return "cache.l2_miss";
      case EventKind::DramAccess:    return "mem.dram";
      case EventKind::Prefetch:      return "cache.prefetch";
      case EventKind::Stimulus:      return "stimulus.inject";
      case EventKind::VtCommitRound: return "vt.round";
      case EventKind::RefCycle:      return "refsim.cycle";
      case EventKind::BaselineWave:  return "baseline.wave";
      case EventKind::Checkpoint:    return "ckpt.snapshot";
    }
    return "unknown";
}

const char *
causeName(AbortCause c)
{
    switch (c) {
      case AbortCause::None:          return "none";
      case AbortCause::LateArg:       return "late-arg";
      case AbortCause::ReadVersion:   return "read-version";
      case AbortCause::Cascade:       return "cascade";
      case AbortCause::SameTaskOrder: return "same-task-order";
      case AbortCause::Other:         return "other";
    }
    return "unknown";
}

namespace {

thread_local Tracer *tlsActiveTracer = nullptr;

} // namespace

Tracer &
Tracer::process()
{
    static Tracer tracer;
    return tracer;
}

Tracer &
Tracer::global()
{
    return tlsActiveTracer ? *tlsActiveTracer : process();
}

void
Tracer::setThreadActive(Tracer *t)
{
    tlsActiveTracer = t;
}

void
Tracer::setCapacityPerTile(size_t cap)
{
    _capPerTile = cap == 0 ? 1 : cap;
}

Tracer::Ring &
Tracer::ringFor(uint32_t tile)
{
    if (tile >= _rings.size())
        _rings.resize(tile + 1);
    return _rings[tile];
}

void
Tracer::record(const TraceEvent &e)
{
    Ring &ring = ringFor(e.tile);
    if (ring.buf.size() < _capPerTile) {
        ring.buf.push_back(e);
        return;
    }
    // Full: overwrite the oldest (ring order starts at `next`).
    ring.buf[ring.next] = e;
    ring.next = (ring.next + 1) % ring.buf.size();
    ring.wrapped = true;
    ++ring.dropped;
    ++_dropped;
}

std::vector<uint64_t>
Tracer::droppedByTile() const
{
    std::vector<uint64_t> out(_rings.size(), 0);
    for (size_t i = 0; i < _rings.size(); ++i)
        out[i] = _rings[i].dropped;
    return out;
}

size_t
Tracer::eventCount() const
{
    size_t n = 0;
    for (const Ring &r : _rings)
        n += r.buf.size();
    return n;
}

int
Tracer::maxTile() const
{
    for (size_t i = _rings.size(); i-- > 0;) {
        if (!_rings[i].buf.empty())
            return static_cast<int>(i);
    }
    return -1;
}

void
Tracer::clear()
{
    _rings.clear();
    _dropped = 0;
}

void
Tracer::mergeFrom(const Tracer &other)
{
    std::vector<TraceEvent> events;
    for (const Ring &ring : other._rings) {
        events.clear();
        appendRing(ring, events);
        for (const TraceEvent &e : events)
            record(e);
    }
    // record() above already counted overwrites in THIS tracer's
    // rings; fold in drops that happened inside the source rings so
    // per-tile counts survive the sweep merge.
    for (size_t i = 0; i < other._rings.size(); ++i) {
        if (other._rings[i].dropped != 0)
            ringFor(static_cast<uint32_t>(i)).dropped +=
                other._rings[i].dropped;
    }
    _dropped += other._dropped;
}

void
Tracer::appendRing(const Ring &ring,
                   std::vector<TraceEvent> &out) const
{
    if (!ring.wrapped) {
        out.insert(out.end(), ring.buf.begin(), ring.buf.end());
        return;
    }
    out.insert(out.end(), ring.buf.begin() + ring.next,
               ring.buf.end());
    out.insert(out.end(), ring.buf.begin(),
               ring.buf.begin() + ring.next);
}

std::string
Tracer::toChromeJson() const
{
    // Chrome trace_event "JSON object format": the viewer groups by
    // (pid, tid); we map pid <- tile and tid <- core so each tile is
    // one process lane with one track per core. ts/dur are in
    // microseconds; one simulated cycle is exported as 1 us.
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.kv("droppedEvents", _dropped);
    if (_dropped != 0) {
        // Attribution: which tile's ring wrapped. Only non-zero
        // tiles, so the header stays small on wide meshes.
        w.key("droppedEventsByTile").beginObject();
        char tileKey[32];
        for (size_t tile = 0; tile < _rings.size(); ++tile) {
            if (_rings[tile].dropped == 0)
                continue;
            std::snprintf(tileKey, sizeof(tileKey), "tile%zu", tile);
            w.kv(tileKey, _rings[tile].dropped);
        }
        w.endObject();
    }
    w.key("traceEvents").beginArray();

    char name[96];
    for (size_t tile = 0; tile < _rings.size(); ++tile) {
        if (_rings[tile].buf.empty())
            continue;
        // Name the process lane after the tile.
        std::snprintf(name, sizeof(name), "tile%zu", tile);
        w.beginObject();
        w.kv("ph", "M");
        w.kv("pid", static_cast<uint64_t>(tile));
        w.kv("name", "process_name");
        w.key("args").beginObject().kv("name", name).endObject();
        w.endObject();

        std::vector<TraceEvent> events;
        appendRing(_rings[tile], events);
        for (const TraceEvent &e : events) {
            const bool complete =
                e.kind == EventKind::TaskDispatch ||
                e.kind == EventKind::NocSend ||
                e.kind == EventKind::BaselineWave ||
                e.kind == EventKind::RefCycle;
            const bool task_event =
                e.kind == EventKind::TaskDispatch ||
                e.kind == EventKind::TaskCommit ||
                e.kind == EventKind::TaskAbort;
            w.beginObject();
            // Keep names to the fixed taxonomy so name-based queries
            // aggregate; per-event identity lives in args.
            w.kv("name", kindName(e.kind));
            w.kv("cat", kindName(e.kind));
            w.kv("ph", complete ? "X" : "i");
            if (!complete)
                w.kv("s", "t");   // Instant scoped to its thread.
            w.kv("ts", e.ts);
            if (complete)
                w.kv("dur", static_cast<uint64_t>(e.dur));
            w.kv("pid", static_cast<uint64_t>(e.tile));
            w.kv("tid", static_cast<uint64_t>(e.core));
            w.key("args").beginObject();
            if (task_event) {
                w.kv("task", e.arg0);
                w.kv("inst", e.arg1);
            } else {
                w.kv("arg0", e.arg0);
                w.kv("arg1", e.arg1);
            }
            if (e.kind == EventKind::TaskAbort)
                w.kv("cause",
                     causeName(static_cast<AbortCause>(e.cause)));
            w.endObject();
            w.endObject();
        }
    }

    w.endArray();
    w.endObject();
    return w.str();
}

bool
Tracer::exportChromeJson(const std::string &path) const
{
    std::string doc = toChromeJson();
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    bool ok = written == doc.size();
    ok = std::fclose(f) == 0 && ok;
    return ok;
}

} // namespace ash::obs
