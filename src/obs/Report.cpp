#include "obs/Report.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <cstdlib>
#include <cstring>

#include "common/BuildInfo.h"
#include "common/Json.h"
#include "common/Logging.h"
#include "obs/Trace.h"

namespace ash::obs {

Report &
Report::global()
{
    static Report report;
    return report;
}

bool
Report::parseArgs(int &argc, char **argv)
{
    auto usage = [&]() {
        std::fprintf(stderr,
                     "usage: %s [--stats-json <path>] "
                     "[--trace <path>] [--trace-events <n>]\n",
                     argc > 0 ? argv[0] : "bench");
        return false;
    };

    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto takeValue = [&](const char *&dst) {
            if (i + 1 >= argc)
                return false;
            dst = argv[++i];
            return true;
        };
        const char *val = nullptr;
        if (std::strcmp(arg, "--stats-json") == 0) {
            if (!takeValue(val))
                return usage();
            _statsJsonPath = val;
        } else if (std::strcmp(arg, "--trace") == 0) {
            if (!takeValue(val))
                return usage();
            _tracePath = val;
        } else if (std::strcmp(arg, "--trace-events") == 0) {
            if (!takeValue(val))
                return usage();
            long n = std::atol(val);
            if (n <= 0)
                return usage();
            Tracer::global().setCapacityPerTile(
                static_cast<size_t>(n));
        } else {
            argv[out++] = argv[i];   // Not ours; keep for the bench.
        }
    }
    argc = out;

    if (!_tracePath.empty())
        Tracer::setEnabled(true);
    return true;
}

void
Report::record(const std::string &key, double value)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _results[key] = value;
}

double
Report::get(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _results.find(key);
    return it == _results.end()
               ? std::numeric_limits<double>::quiet_NaN()
               : it->second;
}

void
Report::recordStats(const std::string &scope, const StatSet &stats)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _stats.mergeScoped(scope, stats);
}

void
Report::setInterrupted(bool interrupted)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _interrupted = interrupted;
}

bool
Report::interrupted() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _interrupted;
}

std::string
Report::toJson(bool pretty) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    JsonWriter w(pretty);
    w.beginObject();
    w.kv("bench", _name);
    if (_interrupted)
        w.kv("interrupted", true);
    // Build provenance: constant for one binary, so run-to-run byte
    // compares of the same build still hold.
    w.key("build").beginObject();
    w.kv("git", buildinfo::kGitHash);
    w.kv("compiler", buildinfo::kCompiler);
    w.kv("build_type", buildinfo::kBuildType);
    w.kv("options", buildinfo::kOptions);
    w.endObject();
    w.key("results").beginObject();
    for (const auto &[key, value] : _results)
        w.kv(key, value);
    w.endObject();
    w.endObject();
    std::string head = w.str();

    // Graft the StatSet's own JSON in as the "stats" member rather
    // than re-walking it here; both writers emit balanced documents,
    // so the splice point is the final '}'.
    std::string stats_doc = _stats.toJson(pretty);
    size_t cut = head.rfind('}');
    std::string out = head.substr(0, cut);
    out += pretty ? ",\n  \"stats\": " : ",\"stats\": ";
    out += stats_doc;
    out += head.substr(cut);
    return out;
}

int
Report::finish() const
{
    int rc = 0;
    if (!_statsJsonPath.empty()) {
        std::string doc = toJson();
        std::string err;
        if (!jsonValid(doc, &err)) {
            // A malformed report is a bug in the exporters, not in
            // the caller; surface it loudly but still write the file
            // for post-mortem.
            warn("stats JSON failed self-validation: %s", err.c_str());
            rc = 1;
        }
        std::FILE *f = std::fopen(_statsJsonPath.c_str(), "w");
        if (!f) {
            warn("cannot write stats JSON to %s",
                 _statsJsonPath.c_str());
            rc = 1;
        } else {
            std::fwrite(doc.data(), 1, doc.size(), f);
            if (std::fclose(f) != 0)
                rc = 1;
            else
                inform("wrote stats JSON: %s", _statsJsonPath.c_str());
        }
    }
    if (!_tracePath.empty()) {
        const Tracer &tracer = Tracer::global();
        if (!tracer.exportChromeJson(_tracePath)) {
            warn("cannot write trace to %s", _tracePath.c_str());
            rc = 1;
        } else {
            inform("wrote trace: %s (%zu events, %llu dropped) — "
                   "open in chrome://tracing or ui.perfetto.dev",
                   _tracePath.c_str(), tracer.eventCount(),
                   (unsigned long long)tracer.droppedCount());
            if (tracer.droppedCount() != 0) {
                // Say WHICH rings wrapped: raise --trace-events, or
                // accept that those tiles' earliest events are gone.
                std::vector<uint64_t> drops = tracer.droppedByTile();
                for (size_t t = 0; t < drops.size(); ++t) {
                    if (drops[t] != 0)
                        warn("trace ring overflow: tile %zu dropped "
                             "%llu event(s)",
                             t, (unsigned long long)drops[t]);
                }
            }
        }
    }
    return rc;
}

void
Report::clear()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _results.clear();
    _stats.clear();
}

} // namespace ash::obs
