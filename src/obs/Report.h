/**
 * @file
 * Machine-readable run reporting for the bench binaries: a process-
 * wide registry of named numeric results plus merged StatSets, the
 * shared --stats-json/--trace command-line convention, and the JSON
 * exporter that seeds the repo's BENCH_*.json perf trajectory.
 *
 * A bench calls parseArgs() once at startup (which also arms the
 * event tracer when --trace is given), record()s its headline numbers
 * as it computes them, recordStats() any per-run StatSets worth
 * keeping, and finish()es at exit to write the requested files.
 *
 * Concurrency: record()/recordStats() are serialized under a mutex,
 * so stray direct calls from sweep worker threads are safe; the
 * supported parallel path, though, is the per-job staging in
 * exec::JobContext (bench::record routes there automatically), whose
 * merge barrier applies jobs in submission order. Either way the
 * exported JSON is independent of job completion order: results and
 * stats live in sorted maps, so key order never depends on timing.
 */

#ifndef ASH_OBS_REPORT_H
#define ASH_OBS_REPORT_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/Stats.h"

namespace ash::obs {

/** Process-wide result registry and exporter; see file header. */
class Report
{
  public:
    static Report &global();

    /**
     * Parse and consume the common observability flags:
     *
     *   --stats-json <path>   write the result/stat report as JSON
     *   --trace <path>        enable event tracing, write Chrome JSON
     *   --trace-events <n>    tracer ring capacity per tile
     *
     * Unknown arguments are left in place (argc/argv are compacted to
     * the survivors) so benches can layer their own flags. Returns
     * false and prints usage on a malformed invocation (a known flag
     * missing its value).
     */
    bool parseArgs(int &argc, char **argv);

    /** Name stamped into the report ("bench" member). */
    void setName(const std::string &name) { _name = name; }
    const std::string &name() const { return _name; }

    /** Record one named numeric result, e.g. ("speedup.sash_vs_zen2.gcd", 12.3). */
    void record(const std::string &key, double value);

    /** Recorded value or NaN when absent. */
    double get(const std::string &key) const;

    /** Merge @p stats under @p scope into the report's StatSet. */
    void recordStats(const std::string &scope, const StatSet &stats);

    /**
     * Mark this run as interrupted (SIGINT/SIGTERM drain): the
     * exported JSON gains an `"interrupted": true` member so a
     * partial report can never be mistaken for a complete one. The
     * member is emitted only when set, keeping uninterrupted runs'
     * bytes unchanged.
     */
    void setInterrupted(bool interrupted);
    bool interrupted() const;

    const std::map<std::string, double> &results() const
    { return _results; }
    StatSet &stats() { return _stats; }

    bool statsJsonRequested() const { return !_statsJsonPath.empty(); }
    bool traceRequested() const { return !_tracePath.empty(); }
    const std::string &statsJsonPath() const { return _statsJsonPath; }
    const std::string &tracePath() const { return _tracePath; }

    /** The whole report as one JSON document. */
    std::string toJson(bool pretty = true) const;

    /**
     * Write the stats JSON and/or trace file if requested; returns 0
     * on success (including "nothing requested"), 1 on I/O failure.
     * Intended as `return obs::Report::global().finish();`.
     */
    int finish() const;

    /** Drop all recorded results and stats (paths/name kept). */
    void clear();

  private:
    std::string _name = "bench";
    std::string _statsJsonPath;
    std::string _tracePath;
    std::map<std::string, double> _results;
    StatSet _stats;
    bool _interrupted = false;
    mutable std::mutex _mutex;   ///< Guards _results, _stats,
                                 ///< _interrupted.
};

} // namespace ash::obs

#endif // ASH_OBS_REPORT_H
