/**
 * @file
 * ash_cli: thin client for ash_served. Builds one request from
 * flags, sends it over the daemon's unix socket, prints the
 * response envelope (or just its result member with --result-only),
 * and exits 0 on ok:true, 2 on an ok:false envelope, 1 on any
 * transport failure.
 *
 * TRANSPORT failures (connect refused, send failed, short read —
 * typically the daemon restarting or a connection racing a drain)
 * are retried with bounded exponential backoff and deterministic
 * jitter (exec::retryBackoffMs seeded from the client name, so two
 * clients never thunder in lockstep). An ok:false ENVELOPE is a
 * definitive answer from the daemon, never retried here.
 *
 *   ash_cli --socket PATH [--op sim|stats|ping|shutdown]
 *           [--client NAME] [--design NAME]
 *           [--engine dash|sash|refsim|jit] [--tiles N] [--cycles N]
 *           [--nocache] [--id N] [--deadline-ms N] [--result-only]
 *           [--retries N] [--retry-budget-ms N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <chrono>
#include <thread>

#include <unistd.h>

#include "exec/Job.h"
#include "exec/SweepRunner.h"
#include "serve/Net.h"
#include "serve/Protocol.h"

using namespace ash;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--op sim|stats|ping|shutdown]\n"
        "          [--client NAME] [--design NAME]\n"
        "          [--engine dash|sash|refsim|jit] [--tiles N]\n"
        "          [--cycles N] [--nocache] [--id N]\n"
        "          [--deadline-ms N] [--result-only]\n"
        "          [--retries N] [--retry-budget-ms N]\n",
        argv0);
    return 2;
}

/** One connect/send/read round trip. Returns 1 on an envelope in
 *  @p envelope, 0 on a transport failure worth retrying. */
int
roundTrip(const std::string &socketPath, const serve::SimRequest &req,
          std::string &envelope, std::string &transportErr)
{
    std::string err;
    int fd = serve::net::connectUnix(socketPath, &err);
    if (fd < 0) {
        transportErr = err;
        return 0;
    }
    if (!serve::net::writeAll(fd, serve::serializeRequest(req) +
                                      "\n")) {
        transportErr = "send failed";
        ::close(fd);
        return 0;
    }
    serve::net::LineReader reader(fd);
    int rc = reader.readLine(envelope, nullptr, 10 * 60 * 1000);
    ::close(fd);
    if (rc != 1) {
        transportErr = "no response (rc=" + std::to_string(rc) + ")";
        return 0;
    }
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    serve::SimRequest req;
    bool resultOnly = false;
    int retries = 0;
    uint64_t retryBudgetMs = 10000;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v;
        if (std::strcmp(arg, "--socket") == 0 && (v = value()))
            socketPath = v;
        else if (std::strcmp(arg, "--op") == 0 && (v = value()))
            req.op = v;
        else if (std::strcmp(arg, "--client") == 0 && (v = value()))
            req.client = v;
        else if (std::strcmp(arg, "--design") == 0 && (v = value()))
            req.design = v;
        else if (std::strcmp(arg, "--engine") == 0 && (v = value()))
            req.engine = v;
        else if (std::strcmp(arg, "--tiles") == 0 && (v = value()))
            req.tiles = static_cast<uint32_t>(std::atoi(v));
        else if (std::strcmp(arg, "--cycles") == 0 && (v = value()))
            req.cycles = static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--nocache") == 0)
            req.nocache = true;
        else if (std::strcmp(arg, "--id") == 0 && (v = value()))
            req.id = static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--deadline-ms") == 0 &&
                 (v = value()))
            req.deadlineMs = static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--result-only") == 0)
            resultOnly = true;
        else if (std::strcmp(arg, "--retries") == 0 && (v = value()))
            retries = std::atoi(v);
        else if (std::strcmp(arg, "--retry-budget-ms") == 0 &&
                 (v = value()))
            retryBudgetMs = static_cast<uint64_t>(std::atoll(v));
        else
            return usage(argv[0]);
    }
    if (socketPath.empty())
        return usage(argv[0]);

    using Clock = std::chrono::steady_clock;
    Clock::time_point budgetEnd =
        Clock::now() + std::chrono::milliseconds(retryBudgetMs);
    uint64_t seed = exec::stableSeed("ash-cli/" + req.client);

    std::string envelope;
    std::string transportErr;
    for (int attempt = 0;; ++attempt) {
        if (roundTrip(socketPath, req, envelope, transportErr))
            break;
        bool budgetLeft = Clock::now() < budgetEnd;
        if (attempt >= retries || !budgetLeft) {
            std::fprintf(stderr, "ash_cli: %s%s\n",
                         transportErr.c_str(),
                         attempt > 0 ? " (retries exhausted)" : "");
            return 1;
        }
        uint64_t delayMs =
            exec::retryBackoffMs(seed, attempt, 25, 2000);
        std::fprintf(stderr,
                     "ash_cli: %s; retry %d/%d in %llu ms\n",
                     transportErr.c_str(), attempt + 1, retries,
                     static_cast<unsigned long long>(delayMs));
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delayMs));
    }

    if (resultOnly) {
        std::string result;
        if (!serve::extractResult(envelope, result)) {
            std::fprintf(stderr, "ash_cli: envelope carries no "
                                 "result:\n%s\n",
                         envelope.c_str());
            return 2;
        }
        std::printf("%s\n", result.c_str());
    } else {
        std::printf("%s\n", envelope.c_str());
    }

    // ok:false envelopes exit 2 so scripts can branch on failure.
    // (JsonWriter emits "key": value with a space.)
    return envelope.rfind("{\"ok\": true", 0) == 0 ? 0 : 2;
}
