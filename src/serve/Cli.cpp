/**
 * @file
 * ash_cli: thin client for ash_served. Builds one request from
 * flags, sends it over the daemon's unix socket, prints the
 * response envelope (or just its result member with --result-only),
 * and exits 0 on ok:true, 2 on an ok:false envelope, 1 on any
 * transport failure.
 *
 *   ash_cli --socket /tmp/ash.sock [--op sim|stats|ping|shutdown]
 *           [--client NAME] [--design NAME]
 *           [--engine dash|sash|refsim|jit] [--tiles N] [--cycles N]
 *           [--nocache] [--id N] [--result-only]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "serve/Net.h"
#include "serve/Protocol.h"

using namespace ash;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--op sim|stats|ping|shutdown]\n"
        "          [--client NAME] [--design NAME]\n"
        "          [--engine dash|sash|refsim|jit] [--tiles N]\n"
        "          [--cycles N] [--nocache] [--id N] [--result-only]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    serve::SimRequest req;
    bool resultOnly = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v;
        if (std::strcmp(arg, "--socket") == 0 && (v = value()))
            socketPath = v;
        else if (std::strcmp(arg, "--op") == 0 && (v = value()))
            req.op = v;
        else if (std::strcmp(arg, "--client") == 0 && (v = value()))
            req.client = v;
        else if (std::strcmp(arg, "--design") == 0 && (v = value()))
            req.design = v;
        else if (std::strcmp(arg, "--engine") == 0 && (v = value()))
            req.engine = v;
        else if (std::strcmp(arg, "--tiles") == 0 && (v = value()))
            req.tiles = static_cast<uint32_t>(std::atoi(v));
        else if (std::strcmp(arg, "--cycles") == 0 && (v = value()))
            req.cycles = static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--nocache") == 0)
            req.nocache = true;
        else if (std::strcmp(arg, "--id") == 0 && (v = value()))
            req.id = static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--result-only") == 0)
            resultOnly = true;
        else
            return usage(argv[0]);
    }
    if (socketPath.empty())
        return usage(argv[0]);

    std::string err;
    int fd = serve::net::connectUnix(socketPath, &err);
    if (fd < 0) {
        std::fprintf(stderr, "ash_cli: %s\n", err.c_str());
        return 1;
    }

    if (!serve::net::writeAll(fd, serve::serializeRequest(req) +
                                      "\n")) {
        std::fprintf(stderr, "ash_cli: send failed\n");
        ::close(fd);
        return 1;
    }

    serve::net::LineReader reader(fd);
    std::string envelope;
    int rc = reader.readLine(envelope, nullptr, 10 * 60 * 1000);
    ::close(fd);
    if (rc != 1) {
        std::fprintf(stderr, "ash_cli: no response (rc=%d)\n", rc);
        return 1;
    }

    if (resultOnly) {
        std::string result;
        if (!serve::extractResult(envelope, result)) {
            std::fprintf(stderr, "ash_cli: envelope carries no "
                                 "result:\n%s\n",
                         envelope.c_str());
            return 2;
        }
        std::printf("%s\n", result.c_str());
    } else {
        std::printf("%s\n", envelope.c_str());
    }

    // ok:false envelopes exit 2 so scripts can branch on failure.
    // (JsonWriter emits "key": value with a space.)
    return envelope.rfind("{\"ok\": true", 0) == 0 ? 0 : 2;
}
