/**
 * @file
 * Per-client fair-share admission and dispatch for the serve
 * daemon. Three independent policies compose here:
 *
 *  1. ADMISSION — each client has a bounded queue (backpressure: a
 *     flooding client is rejected with queue_full, others are
 *     untouched) and an optional token-bucket rate limit (rejected
 *     with rate_limited). Both are per client by construction.
 *  2. DISPATCH — workers pop round-robin across clients that have
 *     queued work, so one client with 1000 queued requests cannot
 *     starve a client with one. A per-client in-flight cap keeps a
 *     single client from occupying every worker even when it is the
 *     only one queued (head-of-line blocking across bursts).
 *  3. DRAIN — close() stops admission but pop() keeps handing out
 *     already-admitted work until the queue is empty; pop() returns
 *     false only when closed AND drained. That is the daemon's
 *     graceful-shutdown contract: everything admitted is answered.
 */

#ifndef ASH_SERVE_FAIRQUEUE_H
#define ASH_SERVE_FAIRQUEUE_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace ash::serve {

/** Per-client admission/dispatch knobs. */
struct QueueLimits
{
    size_t maxQueuedPerClient = 256;
    size_t maxInFlightPerClient = 4;
    /** Sustained admissions/sec per client; 0 disables the limiter. */
    double ratePerSec = 0.0;
    /** Token-bucket burst capacity (only meaningful with a rate). */
    double burst = 32.0;
    /** GLOBAL queued-work cap across every client; 0 disables it.
     *  This is the overload-shedding line: past it the daemon is
     *  saturated regardless of which client is asking, and admitting
     *  more work only grows queue-wait for everyone. Per-client caps
     *  protect clients from each other; this cap protects the daemon
     *  itself. */
    size_t maxQueuedGlobal = 0;
};

/** Outcome of an admission attempt. */
enum class Admit { Ok, QueueFull, RateLimited, Overloaded, Closed };

/** Stable machine-readable tag for @p a ("queue_full", ...). */
const char *admitName(Admit a);

/** Multi-client work queue; see file header. */
class FairQueue
{
  public:
    struct ClientSnap
    {
        std::string client;
        size_t queued = 0;
        size_t inFlight = 0;
        uint64_t admitted = 0;
        uint64_t rejectedFull = 0;
        uint64_t rejectedRate = 0;
        uint64_t rejectedOverload = 0;
    };

    explicit FairQueue(QueueLimits limits) : _limits(limits) {}

    /** Admit @p work for @p client, or say why not. */
    Admit push(const std::string &client, std::function<void()> work);

    /**
     * Block for the next piece of work, honoring round-robin order
     * and the in-flight cap; fills @p client with its owner. The
     * caller MUST call done(client) after running it. Returns false
     * when the queue is closed and fully drained.
     */
    bool pop(std::function<void()> &work, std::string &client);

    /** Mark one popped item finished (frees an in-flight slot). */
    void done(const std::string &client);

    /** Stop admission; queued work still drains through pop(). */
    void close();

    /** Total queued (not yet popped) items. */
    size_t depth() const;

    /** Per-client counters, sorted by client name. */
    std::vector<ClientSnap> snapshot() const;

  private:
    using Clock = std::chrono::steady_clock;

    struct ClientState
    {
        std::deque<std::function<void()>> queue;
        size_t inFlight = 0;
        uint64_t admitted = 0;
        uint64_t rejectedFull = 0;
        uint64_t rejectedRate = 0;
        uint64_t rejectedOverload = 0;
        double tokens = 0.0;
        Clock::time_point lastRefill{};
        bool everRefilled = false;
    };

    /** Caller holds _mutex. Token-bucket check-and-take. */
    bool takeTokenLocked(ClientState &cs);

    QueueLimits _limits;
    mutable std::mutex _mutex;
    std::condition_variable _cv;
    std::map<std::string, ClientState> _clients;
    /** Clients in first-seen order; _cursor rotates dispatch. */
    std::vector<std::string> _order;
    size_t _cursor = 0;
    size_t _depth = 0;
    bool _closed = false;
};

} // namespace ash::serve

#endif // ASH_SERVE_FAIRQUEUE_H
