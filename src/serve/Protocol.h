/**
 * @file
 * The ash_serve wire protocol: line-delimited JSON over a stream
 * socket. A client sends one JSON object per line; the daemon
 * answers each with one JSON envelope per line, in order, on the
 * same connection (keep-alive). The same request/response bodies
 * ride the optional localhost HTTP endpoint (POST /sim, GET /stats).
 *
 * Request:
 *   {"op":"sim","client":"c0","design":"ntt","engine":"sash",
 *    "tiles":16,"cycles":60,"nocache":false,"id":7}
 * ops: "sim" (run or memoize a simulation), "stats" (daemon
 * counters), "ping", "shutdown" (begin a graceful drain).
 *
 * Response envelope (success):
 *   {"ok":true,"op":"sim","id":7,"client":"c0","key":"<fp>-<cfg>",
 *    "cache":"cold|warm|memo","queue_ms":q,"service_ms":s,
 *    "result":{...}}
 * and (failure):
 *   {"ok":false,"op":"sim","id":7,"client":"c0","error":
 *    {"kind":"...","message":"..."}}
 *
 * CACHE-KEY / DETERMINISM CONTRACT: "key" is the content-addressed
 * identity of the simulation — the design's structural fingerprint
 * (ckpt::designFingerprint) plus an FNV hash of everything that can
 * change the result (engine, tiles, cycles, compiler knobs). The
 * "result" member is a deterministic function of that key: two
 * responses with equal keys carry byte-identical result bytes,
 * whether computed cold, served from the warm design cache, or
 * memoized — across daemon restarts. Timing members (queue_ms,
 * service_ms) live OUTSIDE result so the contract is testable with
 * memcmp. extractResult() recovers the raw result bytes.
 */

#ifndef ASH_SERVE_PROTOCOL_H
#define ASH_SERVE_PROTOCOL_H

#include <cstdint>
#include <string>

namespace ash::serve {

/** One parsed client request (defaults are the wire defaults). */
struct SimRequest
{
    std::string op = "sim";
    std::string client = "anon";
    std::string design = "ntt";
    std::string engine = "sash";   ///< "dash" | "sash" | "refsim".
    uint32_t tiles = 16;
    uint64_t cycles = 60;
    bool nocache = false;          ///< Skip result memoization.
    uint64_t id = 0;               ///< Client correlation id, echoed.
    /** Client deadline budget, milliseconds; 0 = server default.
     *  Propagated through admission, the worker watchdog, and the
     *  jit compile bound. NOT part of the cache key: a deadline
     *  changes whether a result arrives, never what it is. */
    uint64_t deadlineMs = 0;
};

/**
 * Parse one request line. Returns false with a message in @p err on
 * malformed JSON, unknown members of the wrong type, or field
 * values outside their validated ranges (client names are
 * restricted to [A-Za-z0-9._-]{1,64} because they key fault scopes
 * and accounting tables).
 */
bool parseRequest(const std::string &line, SimRequest &out,
                  std::string *err);

/** The request as one compact JSON line (no trailing newline). */
std::string serializeRequest(const SimRequest &req);

/**
 * Hash of every request field that affects the simulation RESULT:
 * engine, tiles, cycles, and the compiler-option defaults baked
 * into this build. Combined with the design fingerprint it forms
 * the memoization key.
 */
uint64_t configHash(const SimRequest &req);

/**
 * Hash of the request fields that affect the compiled PROGRAM only
 * (tiles + compiler knobs — dash and sash share programs, and
 * cycles never reaches the compiler). Keys the hot design cache, so
 * a sash run warms the cache for the matching dash run.
 */
uint64_t programHash(const SimRequest &req);

/** "<fingerprint-hex>-<confighash-hex>": the memoization key. */
std::string cacheKey(uint64_t designFingerprint, uint64_t cfgHash);

/** Wall-clock accounting carried in the envelope, milliseconds. */
struct Timing
{
    double queueMs = 0.0;
    double serviceMs = 0.0;
};

/**
 * Success envelope for a sim response. @p resultJson is spliced in
 * verbatim as the final "result" member — its bytes are the
 * deterministic payload the memo contract is defined over.
 */
std::string okSimEnvelope(const SimRequest &req, const std::string &key,
                          const char *cacheClass, const Timing &timing,
                          const std::string &resultJson);

/** Success envelope for ping/stats/shutdown (@p payload verbatim). */
std::string okEnvelope(const SimRequest &req,
                       const std::string &payloadJson);

/** Failure envelope; @p kind is a stable machine-readable tag. */
std::string errorEnvelope(const SimRequest &req, const std::string &kind,
                          const std::string &message);

/**
 * Recover the raw bytes of the "result" member from an envelope
 * built by okSimEnvelope()/okEnvelope(). Returns false when the
 * envelope carries no result (e.g. an error envelope).
 */
bool extractResult(const std::string &envelope, std::string &resultOut);

/** Envelope "cache" member, or "" when absent (errors, ping). */
std::string extractCacheClass(const std::string &envelope);

} // namespace ash::serve

#endif // ASH_SERVE_PROTOCOL_H
