#include "serve/FairQueue.h"

namespace ash::serve {

const char *
admitName(Admit a)
{
    switch (a) {
      case Admit::Ok:
        return "ok";
      case Admit::QueueFull:
        return "queue_full";
      case Admit::RateLimited:
        return "rate_limited";
      case Admit::Overloaded:
        return "overloaded";
      case Admit::Closed:
        return "shutting_down";
    }
    return "unknown";
}

bool
FairQueue::takeTokenLocked(ClientState &cs)
{
    if (_limits.ratePerSec <= 0.0)
        return true;
    Clock::time_point now = Clock::now();
    if (!cs.everRefilled) {
        // A fresh client starts with a full burst allowance.
        cs.tokens = _limits.burst;
        cs.everRefilled = true;
    } else {
        double dt = std::chrono::duration<double>(now - cs.lastRefill)
                        .count();
        cs.tokens += dt * _limits.ratePerSec;
        if (cs.tokens > _limits.burst)
            cs.tokens = _limits.burst;
    }
    cs.lastRefill = now;
    if (cs.tokens < 1.0)
        return false;
    cs.tokens -= 1.0;
    return true;
}

Admit
FairQueue::push(const std::string &client, std::function<void()> work)
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_closed)
        return Admit::Closed;
    auto [it, inserted] = _clients.try_emplace(client);
    if (inserted)
        _order.push_back(client);
    ClientState &cs = it->second;
    // Global saturation is checked before the per-client cap: when
    // the daemon as a whole is drowning, even a well-behaved client
    // gets the structured overloaded answer instead of a queue slot
    // it would only wait in.
    if (_limits.maxQueuedGlobal > 0 &&
        _depth >= _limits.maxQueuedGlobal) {
        ++cs.rejectedOverload;
        return Admit::Overloaded;
    }
    if (cs.queue.size() >= _limits.maxQueuedPerClient) {
        ++cs.rejectedFull;
        return Admit::QueueFull;
    }
    if (!takeTokenLocked(cs)) {
        ++cs.rejectedRate;
        return Admit::RateLimited;
    }
    cs.queue.push_back(std::move(work));
    ++cs.admitted;
    ++_depth;
    _cv.notify_one();
    return Admit::Ok;
}

bool
FairQueue::pop(std::function<void()> &work, std::string &client)
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (true) {
        // Round-robin scan from the cursor: first client with queued
        // work and a free in-flight slot wins; the cursor moves past
        // it so the next pop favors the following client.
        if (_depth != 0) {
            size_t n = _order.size();
            for (size_t step = 0; step < n; ++step) {
                size_t idx = (_cursor + step) % n;
                ClientState &cs = _clients[_order[idx]];
                if (cs.queue.empty() ||
                    cs.inFlight >= _limits.maxInFlightPerClient)
                    continue;
                work = std::move(cs.queue.front());
                cs.queue.pop_front();
                ++cs.inFlight;
                --_depth;
                client = _order[idx];
                _cursor = (idx + 1) % n;
                return true;
            }
        }
        if (_closed && _depth == 0)
            return false;
        _cv.wait(lock);
    }
}

void
FairQueue::done(const std::string &client)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _clients.find(client);
    if (it != _clients.end() && it->second.inFlight > 0)
        --it->second.inFlight;
    // A freed slot may unblock a popper stuck on the in-flight cap,
    // and the last done() during a drain must wake every popper so
    // they can observe closed-and-empty and exit.
    _cv.notify_all();
}

void
FairQueue::close()
{
    std::lock_guard<std::mutex> lock(_mutex);
    _closed = true;
    _cv.notify_all();
}

size_t
FairQueue::depth() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _depth;
}

std::vector<FairQueue::ClientSnap>
FairQueue::snapshot() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<ClientSnap> out;
    out.reserve(_clients.size());
    for (const auto &[name, cs] : _clients) {
        ClientSnap s;
        s.client = name;
        s.queued = cs.queue.size();
        s.inFlight = cs.inFlight;
        s.admitted = cs.admitted;
        s.rejectedFull = cs.rejectedFull;
        s.rejectedRate = cs.rejectedRate;
        s.rejectedOverload = cs.rejectedOverload;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace ash::serve
