#include "serve/Server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <ctime>

#include <strings.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/Json.h"
#include "common/Logging.h"
#include "core/arch/AshSim.h"
#include "exec/SweepRunner.h"
#include "jit/JitSimulator.h"
#include "prof/Prof.h"
#include "refsim/ReferenceSimulator.h"
#include "serve/Net.h"

namespace ash::serve {

namespace {

double
msSince(std::chrono::steady_clock::time_point from,
        std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from)
        .count();
}

double
threadCpuSec()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

/** Structured failure a worker turns into an error envelope. */
class ServeJobError : public Error
{
  public:
    ServeJobError(std::string kind, const std::string &what)
        : Error(std::move(kind), what)
    {
    }
};

} // namespace

double
Server::LatencyRec::percentile(double p) const
{
    if (ms.empty())
        return 0.0;
    std::vector<double> sorted = ms;
    std::sort(sorted.begin(), sorted.end());
    double rank = p * static_cast<double>(sorted.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = lo + 1 < sorted.size() ? lo + 1 : lo;
    double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Server::Server(ServerOptions opts)
    : _opts(std::move(opts)),
      _designs(_opts.designCacheBytes),
      _results(_opts.resultEntries, _opts.stateDir),
      _queue(_opts.limits)
{
}

Server::~Server()
{
    if (_started)
        stop();
}

bool
Server::start(std::string *err)
{
    ASH_ASSERT(!_started, "Server::start called twice");
    if (_opts.socketPath.empty()) {
        if (err)
            *err = "no socket path configured";
        return false;
    }
    if (!_opts.stateDir.empty())
        ::mkdir(_opts.stateDir.c_str(), 0777);

    _unixFd = net::listenUnix(_opts.socketPath, err);
    if (_unixFd < 0)
        return false;
    if (_opts.httpEnabled) {
        _httpFd = net::listenTcp(_opts.httpPort, err);
        if (_httpFd < 0) {
            ::close(_unixFd);
            _unixFd = -1;
            return false;
        }
        _httpPort = net::localPort(_httpFd);
    }

    size_t loaded = _results.load();
    if (loaded != 0)
        inform("serve: warm restart — %zu memoized result(s) loaded",
               loaded);

    _startedAt = Clock::now();
    _started = true;

    unsigned workers = _opts.workers ? _opts.workers : 1;

    if (_opts.pool) {
        // The pool forks HERE, before any service thread exists: the
        // children inherit a quiet, single-threaded image. One slot
        // per worker thread, so a thread that submits never waits on
        // a lease. Listen fds do exist already; childInit closes
        // them so a worker can never accept a connection.
        pool::PoolOptions po;
        po.workers = workers;
        po.breaker = _opts.breaker;
        int unixFd = _unixFd, httpFd = _httpFd;
        po.childInit = [unixFd, httpFd] {
            if (unixFd >= 0)
                ::close(unixFd);
            if (httpFd >= 0)
                ::close(httpFd);
        };
        _pool = std::make_unique<pool::Supervisor>(
            po, [this](const pool::WorkRequest &wr) {
                return poolWork(wr);
            });
        if (!_pool->start(err)) {
            _pool.reset();
            ::close(_unixFd);
            _unixFd = -1;
            if (_httpFd >= 0) {
                ::close(_httpFd);
                _httpFd = -1;
            }
            _started = false;
            return false;
        }
    }

    for (unsigned i = 0; i < workers; ++i)
        _workers.emplace_back([this] { workerLoop(); });
    _acceptThreads.emplace_back(
        [this] { acceptLoop(_unixFd, false); });
    if (_httpFd >= 0)
        _acceptThreads.emplace_back(
            [this] { acceptLoop(_httpFd, true); });

    inform("serve: listening on %s%s", _opts.socketPath.c_str(),
           _httpFd >= 0
               ? (" and http://127.0.0.1:" + std::to_string(_httpPort))
                     .c_str()
               : "");
    return true;
}

void
Server::requestStop()
{
    bool expected = false;
    if (!_stopping.compare_exchange_strong(expected, true))
        return;
    // Admission closes immediately; everything already admitted
    // drains through the workers and is answered.
    _queue.close();
}

void
Server::stop()
{
    if (!_started || _stopped)
        return;
    requestStop();

    for (std::thread &t : _acceptThreads)
        t.join();
    _acceptThreads.clear();
    for (std::thread &t : _workers)
        t.join();
    _workers.clear();
    reapConnections(true);
    if (_pool)
        _pool->stop();

    if (_unixFd >= 0)
        ::close(_unixFd);
    if (_httpFd >= 0)
        ::close(_httpFd);
    _unixFd = _httpFd = -1;
    ::unlink(_opts.socketPath.c_str());

    size_t persisted = _results.persist();
    if (persisted != 0)
        inform("serve: persisted %zu memoized result(s)", persisted);
    inform("serve: drained; %llu request(s) answered in total",
           (unsigned long long)_answered.load());
    _stopped = true;
}

void
Server::acceptLoop(int listenFd, bool http)
{
    while (!_stopping.load(std::memory_order_relaxed)) {
        int fd = net::acceptClient(listenFd, 100);
        if (fd < 0)
            continue;
        std::lock_guard<std::mutex> lock(_connMutex);
        _conns.emplace_back();
        Conn &conn = _conns.back();
        conn.thread = std::thread([this, fd, http, &conn] {
            if (http)
                handleHttpConnection(fd);
            else
                handleConnection(fd);
            conn.finished.store(true, std::memory_order_release);
        });
        reapConnections(false);
    }
}

void
Server::reapConnections(bool joinAll)
{
    // Caller holds _connMutex only in the joinAll=false path (the
    // accept loop); stop() calls with joinAll=true after the accept
    // loops are joined, so it takes the lock itself.
    if (joinAll) {
        std::lock_guard<std::mutex> lock(_connMutex);
        for (Conn &c : _conns)
            c.thread.join();
        _conns.clear();
        return;
    }
    for (auto it = _conns.begin(); it != _conns.end();) {
        if (it->finished.load(std::memory_order_acquire)) {
            it->thread.join();
            it = _conns.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::handleConnection(int fd)
{
    net::LineReader reader(fd);
    std::string line;
    while (!_stopping.load(std::memory_order_relaxed)) {
        int rc = reader.readLine(line, &_stopping, 3600 * 1000);
        if (rc < 0)
            break;   // EOF or error: client went away.
        if (rc == 0)
            continue;   // Stop flag or idle timeout slice; recheck.
        std::string envelope = handleLine(line);
        if (!net::writeAll(fd, envelope + "\n"))
            break;
    }
    ::close(fd);
}

void
Server::handleHttpConnection(int fd)
{
    net::LineReader reader(fd);
    std::string line;
    std::string method, target;
    size_t contentLength = 0;
    bool first = true;
    // Headers until the blank line; we only need the request line
    // and Content-Length.
    while (true) {
        int rc = reader.readLine(line, &_stopping, 10000);
        if (rc != 1) {
            ::close(fd);
            return;
        }
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty())
            break;
        if (first) {
            first = false;
            size_t sp1 = line.find(' ');
            size_t sp2 =
                sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
            if (sp2 == std::string::npos) {
                ::close(fd);
                return;
            }
            method = line.substr(0, sp1);
            target = line.substr(sp1 + 1, sp2 - sp1 - 1);
        } else if (line.size() > 15 &&
                   strncasecmp(line.c_str(), "content-length:", 15) ==
                       0) {
            contentLength = static_cast<size_t>(
                std::strtoull(line.c_str() + 15, nullptr, 10));
        }
    }

    std::string body;
    std::string responseBody;
    int status = 200;
    if (method == "POST" && target == "/sim") {
        if (contentLength != 0 &&
            reader.readExact(contentLength, body, &_stopping,
                             10000) != 1) {
            ::close(fd);
            return;
        }
        responseBody = handleLine(body);
    } else if (method == "GET" && target == "/stats") {
        SimRequest req;
        req.op = "stats";
        responseBody = okEnvelope(req, statsPayload());
    } else {
        status = 404;
        responseBody = "{\"ok\":false,\"error\":{\"kind\":\"http\","
                       "\"message\":\"use POST /sim or GET /stats\"}}";
    }

    std::string response = "HTTP/1.1 " + std::to_string(status) +
                           (status == 200 ? " OK" : " Not Found") +
                           "\r\nContent-Type: application/json\r\n"
                           "Content-Length: " +
                           std::to_string(responseBody.size() + 1) +
                           "\r\nConnection: close\r\n\r\n" +
                           responseBody + "\n";
    net::writeAll(fd, response);
    ::close(fd);
}

std::string
Server::handleLine(const std::string &line)
{
    Clock::time_point arrival = Clock::now();
    SimRequest req;
    std::string perr;
    if (!parseRequest(line, req, &perr)) {
        _answered.fetch_add(1, std::memory_order_relaxed);
        return errorEnvelope(req, "proto", perr);
    }

    if (req.op == "ping") {
        _answered.fetch_add(1, std::memory_order_relaxed);
        return okEnvelope(req, "{\"pong\": true}");
    }
    if (req.op == "stats") {
        _answered.fetch_add(1, std::memory_order_relaxed);
        return okEnvelope(req, statsPayload());
    }
    if (req.op == "shutdown") {
        inform("serve: shutdown requested by client '%s'",
               req.client.c_str());
        requestStop();
        _answered.fetch_add(1, std::memory_order_relaxed);
        return okEnvelope(req, "{\"stopping\": true}");
    }

    // op == "sim" from here.
    if (stopRequested()) {
        _answered.fetch_add(1, std::memory_order_relaxed);
        return errorEnvelope(req, "shutting_down",
                             "daemon is draining");
    }

    const DesignEntry *entry = _registry.get(req.design);
    if (!entry) {
        _answered.fetch_add(1, std::memory_order_relaxed);
        account(req.client, nullptr, msSince(arrival, Clock::now()),
                true, 0.0, 0.0);
        return errorEnvelope(req, "unknown_design",
                             "no design named '" + req.design + "'");
    }
    std::string key = cacheKey(entry->fingerprint, configHash(req));

    // Memo fast path: answered inline, never queued, never rate
    // limited — a hit costs a map lookup, which is the whole point.
    std::string payload;
    if (!req.nocache && _results.get(key, payload)) {
        Timing t;
        t.serviceMs = msSince(arrival, Clock::now());
        std::string envelope =
            okSimEnvelope(req, key, "memo", t, payload);
        account(req.client, "memo", t.serviceMs, false, 0.0, 0.0);
        _answered.fetch_add(1, std::memory_order_relaxed);
        return envelope;
    }

    auto pending = std::make_shared<Pending>();
    pending->req = req;
    pending->entry = entry;
    pending->key = std::move(key);
    pending->arrival = arrival;
    pending->enqueued = Clock::now();
    std::future<std::string> future = pending->promise.get_future();

    Admit verdict =
        _queue.push(req.client, [this, pending] { execute(*pending); });
    if (verdict != Admit::Ok) {
        accountRejected(req.client);
        _answered.fetch_add(1, std::memory_order_relaxed);
        return errorEnvelope(req, admitName(verdict),
                             verdict == Admit::QueueFull
                                 ? "per-client queue is full"
                             : verdict == Admit::RateLimited
                                 ? "per-client rate limit exceeded"
                             : verdict == Admit::Overloaded
                                 ? "daemon is saturated; retry with "
                                   "backoff"
                                 : "daemon is draining");
    }
    // Blocks until a worker fulfills the promise; during a drain the
    // workers keep running precisely so this future resolves.
    std::string envelope = future.get();
    _answered.fetch_add(1, std::memory_order_relaxed);
    return envelope;
}

void
Server::workerLoop()
{
    std::function<void()> work;
    std::string client;
    while (_queue.pop(work, client)) {
        work();
        _queue.done(client);
    }
}

void
Server::execute(Pending &p)
{
    Clock::time_point begin = Clock::now();
    Timing timing;
    timing.queueMs = msSince(p.enqueued, begin);
    double cpu0 = threadCpuSec();

    std::string envelope;
    const char *cls = nullptr;
    bool failed = false;
    // Pool mode bills the worker's own measurements; -1 means "use
    // this thread's clocks" (inline mode).
    double billWallSec = -1.0;
    double billCpuSec = 0.0;
    try {
        std::string payload;
        // Re-check the memo store: an identical request may have
        // completed while this one sat in the queue.
        if (!p.req.nocache && _results.get(p.key, payload)) {
            cls = "memo";
        } else if (_pool) {
            // Overload shedding: work that waited past the budget is
            // answered with a structured refusal instead of being run
            // late — under saturation, running it would only push the
            // NEXT request past its budget too.
            if (_opts.queueWaitBudgetMs > 0 &&
                timing.queueMs >
                    static_cast<double>(_opts.queueWaitBudgetMs)) {
                _shedQueueWait.fetch_add(1,
                                         std::memory_order_relaxed);
                throw ServeJobError(
                    "overloaded",
                    "request waited " +
                        std::to_string(
                            static_cast<uint64_t>(timing.queueMs)) +
                        "ms in queue, over the " +
                        std::to_string(_opts.queueWaitBudgetMs) +
                        "ms budget");
            }
            // Deadline propagation: the client budget (or the server
            // default) is measured from ARRIVAL, so queue wait eats
            // into it; what remains bounds the worker watchdog, the
            // jit compile, and the supervisor's kill timer.
            uint64_t totalMs =
                p.req.deadlineMs
                    ? p.req.deadlineMs
                    : static_cast<uint64_t>(_opts.deadlineSec *
                                            1000.0);
            uint64_t remainMs = 0;
            if (totalMs > 0) {
                double spentMs =
                    msSince(p.arrival, Clock::now());
                if (spentMs >= static_cast<double>(totalMs)) {
                    _shedDeadline.fetch_add(
                        1, std::memory_order_relaxed);
                    throw ServeJobError(
                        "deadline_exceeded",
                        "deadline spent before the request "
                        "reached a worker");
                }
                remainMs =
                    totalMs - static_cast<uint64_t>(spentMs);
            }

            pool::WorkRequest wr;
            wr.scope = "serve/" + p.req.client + "/" +
                       p.req.design + "/" + p.req.engine;
            // Quarantine at design granularity: the fingerprint half
            // of the cache key.
            wr.breakerKey = p.key.substr(0, p.key.find('-'));
            wr.deadlineMs = remainMs;
            wr.body = serializeRequest(p.req);
            pool::WorkReply r = _pool->submit(wr);
            billWallSec = r.wallSec;
            billCpuSec = r.cpuSec;
            if (!r.ok)
                throw ServeJobError(
                    r.kind.empty() ? "pool" : r.kind, r.message);
            payload = r.payload;
            cls = r.cls == "cold" ? "cold" : "warm";
            if (!p.req.nocache)
                _results.put(p.key, payload);
        } else {
            bool compiledNow = false;
            std::shared_ptr<const core::TaskProgram> prog;
            // The functional engines (refsim, jit) never need a
            // TaskProgram; jit's own kernel cache sits behind the
            // simulator constructor.
            if (p.req.engine != "refsim" && p.req.engine != "jit")
                prog = _designs.get(*p.entry, p.req.tiles,
                                    programHash(p.req), compiledNow);
            payload = runJob(p.req, *p.entry, prog.get(), p.key);
            cls = compiledNow ? "cold" : "warm";
            if (!p.req.nocache)
                _results.put(p.key, payload);
        }
        timing.serviceMs = msSince(begin, Clock::now());
        envelope = okSimEnvelope(p.req, p.key, cls, timing, payload);
    } catch (const Error &e) {
        failed = true;
        envelope = errorEnvelope(p.req, e.kind(), e.what());
    } catch (const std::exception &e) {
        failed = true;
        envelope = errorEnvelope(p.req, "exception", e.what());
    }

    // Billing charges SERVICE time (work the client caused), while
    // the latency record keeps the client-visible arrival-to-answer
    // time — queue wait is the daemon's scheduling choice, not the
    // client's bill. Pool mode uses the worker's own bill so the
    // supervisor round trip isn't charged to the tenant.
    double wallSec = billWallSec >= 0.0
                         ? billWallSec
                         : msSince(begin, Clock::now()) / 1000.0;
    double cpuSec = billWallSec >= 0.0 ? billCpuSec
                                       : threadCpuSec() - cpu0;
    account(p.req.client, failed ? nullptr : cls,
            msSince(p.arrival, Clock::now()), failed, wallSec,
            cpuSec);
    p.promise.set_value(std::move(envelope));
}

std::string
Server::runJob(const SimRequest &req, const DesignEntry &entry,
               const core::TaskProgram *prog, const std::string &key,
               uint64_t deadlineMs)
{
    ASH_PROF_ZONE("serve.run");
    exec::SweepOptions so;
    so.jobs = 1;
    so.maxAttempts = 1;
    so.jobDeadlineSec = deadlineMs > 0
                            ? static_cast<double>(deadlineMs) / 1000.0
                            : _opts.deadlineSec;
    so.isolate = _opts.isolate;
    // The daemon's drain contract is stronger than the benches':
    // admitted requests must be ANSWERED, so the per-request sweep
    // must not skip its one job when the process is shutting down.
    so.drainOnShutdown = false;

    // The job key embeds the client name: fault plans can target one
    // tenant (site@serve/<client>/), and prof's slowest-jobs table
    // names the offender.
    std::string jobKey =
        "serve/" + req.client + "/" + req.design + "/" + req.engine +
        "#" + std::to_string(_seq.fetch_add(1));

    exec::SweepRunner sweep(so);
    sweep.add(jobKey, [&req, &entry, prog,
                       deadlineMs](exec::JobContext &ctx) {
        refsim::StimulusPtr stim = entry.design.makeStimulus();
        if (req.engine == "refsim") {
            refsim::ReferenceSimulator sim(entry.netlist);
            sim.run(*stim, req.cycles);
            ctx.publish("design_cycles",
                        static_cast<double>(req.cycles));
            ctx.publishStats("stats", sim.stats());
        } else if (req.engine == "jit") {
            // Same observables as refsim (that's the jit parity
            // contract), so the payload stays a pure function of the
            // request even if a kernel-cache miss compiled mid-run —
            // or never compiled at all because the deadline-bounded
            // compile below timed out and the run fell back to the
            // interpreter.
            jit::JitOptions jo;
            jo.compileBudgetMs = deadlineMs;
            jit::JitSimulator sim(entry.netlist, jo);
            sim.run(*stim, req.cycles);
            ctx.publish("design_cycles",
                        static_cast<double>(req.cycles));
            ctx.publishStats("stats", sim.stats());
        } else {
            core::ArchConfig cfg;
            cfg.numTiles = req.tiles;
            cfg.selective = (req.engine == "sash");
            core::AshSimulator sim(*prog, cfg);
            core::RunResult res = sim.run(*stim, req.cycles);
            ctx.publish("chip_cycles",
                        static_cast<double>(res.chipCycles));
            ctx.publish("design_cycles",
                        static_cast<double>(res.designCycles));
            ctx.publish("speed_khz", res.speedKHz(cfg.ghz));
            ctx.publishStats("stats", res.stats);
        }
    });
    sweep.run();

    if (!sweep.failures().empty()) {
        const exec::JobFailure &f = sweep.failures().front();
        std::string kind = f.errorKind.empty()
                               ? exec::failureKindName(f.kind)
                               : f.errorKind;
        throw ServeJobError(kind, "job " + f.job + " failed: " +
                                      f.error);
    }
    return buildResultPayload(req, key, sweep.job(0));
}

pool::WorkReply
Server::poolWork(const pool::WorkRequest &wr)
{
    // Runs in the forked worker child. `this` is the child's
    // copy-on-write image of the Server: _registry and _designs are
    // private to this worker (its own hot program cache, its own jit
    // KernelCache behind the simulator), while _results is never
    // touched — memoization is the SUPERVISOR's job, on the reply,
    // so a crashing worker can never publish a torn memo entry.
    pool::WorkReply r;
    r.seq = wr.seq;
    r.ok = false;

    SimRequest req;
    std::string perr;
    if (!parseRequest(wr.body, req, &perr)) {
        r.kind = "proto";
        r.message = "worker could not parse request: " + perr;
        return r;
    }
    const DesignEntry *entry = _registry.get(req.design);
    if (!entry) {
        r.kind = "unknown_design";
        r.message = "no design named '" + req.design + "'";
        return r;
    }
    try {
        bool compiledNow = false;
        std::shared_ptr<const core::TaskProgram> prog;
        if (req.engine != "refsim" && req.engine != "jit")
            prog = _designs.get(*entry, req.tiles, programHash(req),
                                compiledNow);
        std::string key =
            cacheKey(entry->fingerprint, configHash(req));
        r.payload =
            runJob(req, *entry, prog.get(), key, wr.deadlineMs);
        r.cls = compiledNow ? "cold" : "warm";
        r.ok = true;
    } catch (const Error &e) {
        r.kind = e.kind();
        r.message = e.what();
    } catch (const std::exception &e) {
        r.kind = "exception";
        r.message = e.what();
    }
    return r;
}

std::string
Server::buildResultPayload(const SimRequest &req,
                           const std::string &key,
                           const exec::JobContext &job)
{
    // DETERMINISM: everything here is a pure function of the cache
    // key — request parameters plus published values and stats from
    // a deterministic engine run. Nothing timing- or identity-
    // dependent (job sequence number, wall clock, worker id) may
    // enter, or memo hits would stop being byte-identical to the
    // cold responses they replay.
    JsonWriter w(false);
    w.beginObject();
    w.kv("design", req.design);
    w.kv("engine", req.engine);
    w.kv("tiles", req.tiles);
    w.kv("cycles", req.cycles);
    w.kv("key", key);
    w.key("metrics").beginObject();
    for (const auto &[k, v] : job.published())
        w.kv(k, v);
    w.endObject();
    w.endObject();
    std::string head = w.str();

    const StatSet *stats = job.publishedStats("stats");
    if (!stats)
        return head;
    std::string statsDoc = stats->toJson(false);
    size_t cut = head.rfind('}');
    std::string out = head.substr(0, cut);
    out += ",\"stats\": ";
    out += statsDoc;
    out += head.substr(cut);
    return out;
}

void
Server::account(const std::string &client, const char *cls,
                double latencyMs, bool error, double wallSec,
                double cpuSec)
{
    std::lock_guard<std::mutex> lock(_acctMutex);
    ClientAcct &a = _acct[client];
    ++a.requests;
    a.billedWallSec += wallSec;
    a.billedCpuSec += cpuSec;
    a.lat.add(latencyMs);
    if (error) {
        ++a.errors;
        return;
    }
    if (!cls)
        return;
    if (std::strcmp(cls, "memo") == 0) {
        ++a.memo;
        _latMemo.add(latencyMs);
    } else if (std::strcmp(cls, "warm") == 0) {
        ++a.warm;
        _latWarm.add(latencyMs);
    } else if (std::strcmp(cls, "cold") == 0) {
        ++a.cold;
        _latCold.add(latencyMs);
    }
}

void
Server::accountRejected(const std::string &client)
{
    std::lock_guard<std::mutex> lock(_acctMutex);
    ++_acct[client].rejected;
}

std::string
Server::statsPayload()
{
    DesignCache::Snapshot dc = _designs.stats();
    ResultCache::Snapshot rc = _results.stats();
    std::vector<FairQueue::ClientSnap> queue = _queue.snapshot();

    std::lock_guard<std::mutex> lock(_acctMutex);
    double uptimeMs = msSince(_startedAt, Clock::now());

    JsonWriter w(false);
    w.beginObject();
    w.kv("uptime_ms", uptimeMs);
    w.kv("answered", _answered.load(std::memory_order_relaxed));
    w.kv("draining", stopRequested());

    auto classObj = [&](const char *name, const LatencyRec &lat) {
        w.key(name).beginObject();
        w.kv("count", static_cast<uint64_t>(lat.ms.size()));
        w.kv("p50_ms", lat.percentile(0.50));
        w.kv("p99_ms", lat.percentile(0.99));
        w.endObject();
    };
    w.key("classes").beginObject();
    classObj("memo", _latMemo);
    classObj("warm", _latWarm);
    classObj("cold", _latCold);
    w.endObject();

    w.key("design_cache").beginObject();
    w.kv("hits", dc.hits);
    w.kv("misses", dc.misses);
    w.kv("evictions", dc.evictions);
    w.kv("bytes", dc.bytes);
    w.kv("entries", dc.entries);
    w.endObject();

    w.key("result_cache").beginObject();
    w.kv("hits", rc.hits);
    w.kv("misses", rc.misses);
    w.kv("inserts", rc.inserts);
    w.kv("evictions", rc.evictions);
    w.kv("entries", rc.entries);
    w.kv("loaded", rc.loaded);
    w.kv("dropped", rc.dropped);
    w.endObject();

    w.key("queue").beginObject();
    w.kv("depth", static_cast<uint64_t>(_queue.depth()));
    w.key("clients").beginArray();
    for (const FairQueue::ClientSnap &s : queue) {
        w.beginObject();
        w.kv("client", s.client);
        w.kv("queued", static_cast<uint64_t>(s.queued));
        w.kv("in_flight", static_cast<uint64_t>(s.inFlight));
        w.kv("admitted", s.admitted);
        w.kv("rejected_full", s.rejectedFull);
        w.kv("rejected_rate", s.rejectedRate);
        w.kv("rejected_overload", s.rejectedOverload);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.key("shed").beginObject();
    w.kv("queue_wait",
         _shedQueueWait.load(std::memory_order_relaxed));
    w.kv("deadline", _shedDeadline.load(std::memory_order_relaxed));
    uint64_t overloaded = 0;
    for (const FairQueue::ClientSnap &s : queue)
        overloaded += s.rejectedOverload;
    w.kv("overloaded", overloaded);
    w.endObject();

    if (_pool) {
        pool::PoolStats ps = _pool->stats();
        w.key("pool").beginObject();
        w.kv("workers", ps.workers);
        w.kv("spawns", ps.spawns);
        w.kv("restarts", ps.restarts);
        w.kv("spawn_retries", ps.spawnRetries);
        w.kv("crashes", ps.crashes);
        w.kv("timeouts", ps.timeouts);
        w.kv("ipc_errors", ps.ipcErrors);
        w.kv("rejected_open", ps.rejectedOpen);
        w.kv("breaker_opens", ps.breakerOpens);
        w.key("breakers").beginArray();
        for (const pool::BreakerBoard::Snap &b : ps.breakers) {
            w.beginObject();
            w.kv("key", b.key);
            w.kv("state", pool::breakerStateName(b.state));
            w.kv("failures", b.failures);
            w.kv("rejected", b.rejected);
            w.kv("opens", b.opens);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    // Clients sorted slowest-first by billed wall time: the /stats
    // consumer's "who is eating the daemon" view.
    std::vector<const std::pair<const std::string, ClientAcct> *>
        byCost;
    for (const auto &kv : _acct)
        byCost.push_back(&kv);
    std::sort(byCost.begin(), byCost.end(),
              [](const auto *a, const auto *b) {
                  if (a->second.billedWallSec !=
                      b->second.billedWallSec)
                      return a->second.billedWallSec >
                             b->second.billedWallSec;
                  return a->first < b->first;
              });
    w.key("clients").beginArray();
    for (const auto *kv : byCost) {
        const ClientAcct &a = kv->second;
        w.beginObject();
        w.kv("client", kv->first);
        w.kv("requests", a.requests);
        w.kv("errors", a.errors);
        w.kv("rejected", a.rejected);
        w.kv("memo", a.memo);
        w.kv("warm", a.warm);
        w.kv("cold", a.cold);
        w.kv("billed_wall_ms", a.billedWallSec * 1000.0);
        w.kv("billed_cpu_ms", a.billedCpuSec * 1000.0);
        w.kv("p50_ms", a.lat.percentile(0.50));
        w.kv("p99_ms", a.lat.percentile(0.99));
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

} // namespace ash::serve
