/**
 * @file
 * Result memoization for ash_serve: cacheKey -> the deterministic
 * result-payload bytes of a completed simulation. A hit answers a
 * request without touching the queue, the compiler, or an engine —
 * which is what buys memoized requests their orders-of-magnitude
 * latency edge over cold ones.
 *
 * Entries are LRU-bounded by count (payloads are small JSON docs).
 * With a state directory configured, persist() writes every entry
 * into one results-manifest.json — payload bytes stored verbatim as
 * a JSON string plus a CRC32 — via the atomic unique-tmp + rename
 * pattern (common/TmpPath.h), so a daemon restarted over the same
 * state directory serves byte-identical memo hits, and a crash
 * mid-persist leaves the previous manifest intact rather than a
 * torn one. load() verifies each entry's CRC and drops damaged ones
 * with a warning — corruption degrades to a re-run, never to a
 * wrong answer.
 */

#ifndef ASH_SERVE_RESULTCACHE_H
#define ASH_SERVE_RESULTCACHE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ash::serve {

/** LRU memo store; see file header. */
class ResultCache
{
  public:
    struct Snapshot
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t inserts = 0;
        uint64_t evictions = 0;
        uint64_t entries = 0;
        uint64_t loaded = 0;     ///< Entries restored by load().
        uint64_t dropped = 0;    ///< Damaged entries load() skipped.
    };

    /**
     * @p maxEntries bounds the LRU; @p dir is the persistence
     * directory ("" = memory only). The directory is shared state:
     * writes use unique tmp names so two daemons pointed at the
     * same directory cannot tear each other's manifest.
     */
    ResultCache(size_t maxEntries, std::string dir);

    /** Memo lookup; counts a hit/miss and refreshes LRU order. */
    bool get(const std::string &key, std::string &payloadOut);

    /** Insert/overwrite; evicts LRU entries beyond maxEntries. */
    void put(const std::string &key, std::string payload);

    /** Restore entries from the manifest; returns how many. */
    size_t load();

    /** Write all entries atomically; returns entries written (0
     *  when persistence is off or on I/O failure, with a warning). */
    size_t persist();

    Snapshot stats() const;

    /** The manifest path ("" when persistence is off). */
    std::string manifestPath() const;

  private:
    struct Entry
    {
        std::string payload;
        uint64_t lastUse = 0;
    };

    mutable std::mutex _mutex;
    std::map<std::string, Entry> _entries;
    size_t _maxEntries;
    std::string _dir;
    uint64_t _clock = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint64_t _inserts = 0;
    uint64_t _evictions = 0;
    uint64_t _loaded = 0;
    uint64_t _dropped = 0;
};

} // namespace ash::serve

#endif // ASH_SERVE_RESULTCACHE_H
