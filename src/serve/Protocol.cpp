#include "serve/Protocol.h"

#include "ckpt/Snapshot.h"
#include "common/Json.h"
#include "core/compiler/Compiler.h"

namespace ash::serve {

namespace {

/** Marker splicing the raw result payload into an envelope. */
const char kResultMarker[] = ",\"result\": ";
const char kCacheMarker[] = "\"cache\": \"";

bool
validName(const std::string &s, size_t maxLen)
{
    if (s.empty() || s.size() > maxLen)
        return false;
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        if (!ok)
            return false;
    }
    return true;
}

std::string
hex16(uint64_t v)
{
    char buf[17];
    static const char digits[] = "0123456789abcdef";
    for (int i = 15; i >= 0; --i) {
        buf[i] = digits[v & 0xf];
        v >>= 4;
    }
    buf[16] = '\0';
    return buf;
}

/** Envelope head shared by every response kind. */
JsonWriter
envelopeHead(const SimRequest &req, bool ok)
{
    JsonWriter w(false);
    w.beginObject();
    w.kv("ok", ok);
    w.kv("op", req.op);
    w.kv("id", req.id);
    w.kv("client", req.client);
    return w;
}

/** Close @p w and graft @p payload in as the final @p member. */
std::string
spliceMember(JsonWriter &w, const char *member,
             const std::string &payload)
{
    w.endObject();
    std::string head = w.str();
    size_t cut = head.rfind('}');
    std::string out = head.substr(0, cut);
    out += ",\"";
    out += member;
    out += "\": ";
    out += payload;
    out += head.substr(cut);
    return out;
}

} // namespace

bool
parseRequest(const std::string &line, SimRequest &out, std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = msg;
        return false;
    };

    JsonValue doc;
    std::string perr;
    if (!jsonParse(line, doc, &perr))
        return fail("bad JSON: " + perr);
    if (!doc.isObject())
        return fail("request must be a JSON object");

    SimRequest req;
    for (const auto &[k, v] : doc.object()) {
        if (k == "op" && v.isString())
            req.op = v.string();
        else if (k == "client" && v.isString())
            req.client = v.string();
        else if (k == "design" && v.isString())
            req.design = v.string();
        else if (k == "engine" && v.isString())
            req.engine = v.string();
        else if (k == "tiles" && v.isNumber())
            req.tiles = static_cast<uint32_t>(v.number());
        else if (k == "cycles" && v.isNumber())
            req.cycles = v.asU64();
        else if (k == "nocache" && v.isBool())
            req.nocache = v.boolean();
        else if (k == "id" && v.isNumber())
            req.id = v.asU64();
        else if (k == "deadline_ms" && v.isNumber())
            req.deadlineMs = v.asU64();
        else
            return fail("unknown or mistyped member '" + k + "'");
    }

    if (req.op != "sim" && req.op != "stats" && req.op != "ping" &&
        req.op != "shutdown")
        return fail("unknown op '" + req.op + "'");
    if (!validName(req.client, 64))
        return fail("client must match [A-Za-z0-9._-]{1,64}");
    if (req.op == "sim") {
        if (!validName(req.design, 64))
            return fail("bad design name");
        if (req.engine != "dash" && req.engine != "sash" &&
            req.engine != "refsim" && req.engine != "jit")
            return fail("engine must be dash, sash, refsim, or jit");
        if (req.tiles < 1 || req.tiles > 1024)
            return fail("tiles must be in [1, 1024]");
        if (req.cycles < 1 || req.cycles > 1000000000ull)
            return fail("cycles must be in [1, 1e9]");
        if (req.deadlineMs > 86400000ull)
            return fail("deadline_ms must be in [0, 86400000]");
    }

    out = req;
    return true;
}

std::string
serializeRequest(const SimRequest &req)
{
    JsonWriter w(false);
    w.beginObject();
    w.kv("op", req.op);
    w.kv("client", req.client);
    w.kv("design", req.design);
    w.kv("engine", req.engine);
    w.kv("tiles", req.tiles);
    w.kv("cycles", req.cycles);
    w.kv("nocache", req.nocache);
    w.kv("id", req.id);
    w.kv("deadline_ms", req.deadlineMs);
    w.endObject();
    return w.str();
}

uint64_t
programHash(const SimRequest &req)
{
    // Everything the compiler sees. Defaults are hashed explicitly so
    // a future change to CompilerOptions defaults changes the key
    // (and invalidates stale caches) instead of aliasing into them.
    core::CompilerOptions opts;
    ckpt::Fnv f;
    f.bytes("ash-serve-prog-v1", 17);
    f.u64(req.tiles);
    f.u64(opts.unrolled ? 1 : 0);
    f.u64(opts.maxTaskCost);
    f.u64(opts.useMapping ? 1 : 0);
    f.u64(opts.seed);
    f.u64(static_cast<uint64_t>(opts.imbalance * 1e6));
    return f.h;
}

uint64_t
configHash(const SimRequest &req)
{
    ckpt::Fnv f;
    f.bytes("ash-serve-cfg-v1", 16);
    f.u64(programHash(req));
    f.bytes(req.engine.data(), req.engine.size());
    f.u64(req.cycles);
    return f.h;
}

std::string
cacheKey(uint64_t designFingerprint, uint64_t cfgHash)
{
    return hex16(designFingerprint) + "-" + hex16(cfgHash);
}

std::string
okSimEnvelope(const SimRequest &req, const std::string &key,
              const char *cacheClass, const Timing &timing,
              const std::string &resultJson)
{
    JsonWriter w = envelopeHead(req, true);
    w.kv("key", key);
    w.kv("cache", cacheClass);
    w.kv("queue_ms", timing.queueMs);
    w.kv("service_ms", timing.serviceMs);
    return spliceMember(w, "result", resultJson);
}

std::string
okEnvelope(const SimRequest &req, const std::string &payloadJson)
{
    JsonWriter w = envelopeHead(req, true);
    return spliceMember(w, "result", payloadJson);
}

std::string
errorEnvelope(const SimRequest &req, const std::string &kind,
              const std::string &message)
{
    JsonWriter w = envelopeHead(req, false);
    w.key("error").beginObject();
    w.kv("kind", kind);
    w.kv("message", message);
    w.endObject();
    w.endObject();
    return w.str();
}

bool
extractResult(const std::string &envelope, std::string &resultOut)
{
    // The head never contains the marker: none of its keys embed
    // "result", and a string VALUE cannot carry the marker's raw
    // quotes (jsonEscape turns them into \"). So the first match is
    // the splice point, and the result runs to the final '}'.
    size_t at = envelope.find(kResultMarker);
    if (at == std::string::npos || envelope.empty() ||
        envelope.back() != '}')
        return false;
    size_t begin = at + sizeof(kResultMarker) - 1;
    resultOut.assign(envelope, begin, envelope.size() - 1 - begin);
    return true;
}

std::string
extractCacheClass(const std::string &envelope)
{
    size_t at = envelope.find(kCacheMarker);
    if (at == std::string::npos)
        return "";
    size_t begin = at + sizeof(kCacheMarker) - 1;
    size_t end = envelope.find('"', begin);
    if (end == std::string::npos)
        return "";
    return envelope.substr(begin, end - begin);
}

} // namespace ash::serve
