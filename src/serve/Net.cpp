#include "serve/Net.h"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace ash::serve::net {

namespace {

/** Largest line a peer may send; beyond this the read fails. */
constexpr size_t kMaxLineBytes = 16u << 20;

bool
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what + ": " + std::strerror(errno);
    return false;
}

} // namespace

int
listenUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + path;
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    ::unlink(path.c_str());   // Stale socket from a previous run.
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setErr(err, "bind " + path);
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 128) != 0) {
        setErr(err, "listen " + path);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(uint16_t port, std::string *err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        setErr(err, "bind 127.0.0.1:" + std::to_string(port));
        ::close(fd);
        return -1;
    }
    if (::listen(fd, 128) != 0) {
        setErr(err, "listen");
        ::close(fd);
        return -1;
    }
    return fd;
}

uint16_t
localPort(int fd)
{
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0)
        return 0;
    return ntohs(addr.sin_port);
}

int
acceptClient(int listenFd, int timeoutMs)
{
    pollfd pfd{listenFd, POLLIN, 0};
    int rc = ::poll(&pfd, 1, timeoutMs);
    if (rc <= 0)
        return -1;
    return ::accept(listenFd, nullptr, nullptr);
}

int
connectUnix(const std::string &path, std::string *err)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (err)
            *err = "socket path too long: " + path;
        return -1;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setErr(err, "connect " + path);
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(uint16_t port, std::string *err)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        setErr(err, "socket");
        return -1;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        setErr(err, "connect 127.0.0.1:" + std::to_string(port));
        ::close(fd);
        return -1;
    }
    return fd;
}

bool
writeAll(int fd, const void *data, size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += n;
        len -= static_cast<size_t>(n);
    }
    return true;
}

bool
writeAll(int fd, const std::string &data)
{
    return writeAll(fd, data.data(), data.size());
}

int
LineReader::fill(const std::atomic<bool> *stop, int &budgetMs)
{
    while (true) {
        if (stop && stop->load(std::memory_order_relaxed))
            return 0;
        if (budgetMs <= 0)
            return 0;
        int slice = budgetMs < 100 ? budgetMs : 100;
        pollfd pfd{_fd, POLLIN, 0};
        int rc = ::poll(&pfd, 1, slice);
        budgetMs -= slice;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (rc == 0)
            continue;   // Slice elapsed; re-check stop/budget.
        char chunk[4096];
        ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
        if (n == 0)
            return -1;   // EOF.
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == EWOULDBLOCK)
                continue;
            return -1;
        }
        _buf.append(chunk, static_cast<size_t>(n));
        return 1;
    }
}

int
LineReader::readLine(std::string &out, const std::atomic<bool> *stop,
                     int totalTimeoutMs)
{
    int budget = totalTimeoutMs;
    while (true) {
        size_t nl = _buf.find('\n');
        if (nl != std::string::npos) {
            out.assign(_buf, 0, nl);
            _buf.erase(0, nl + 1);
            return 1;
        }
        if (_buf.size() > kMaxLineBytes)
            return -1;
        int rc = fill(stop, budget);
        if (rc != 1)
            return rc;
    }
}

int
LineReader::readExact(size_t n, std::string &out,
                      const std::atomic<bool> *stop, int totalTimeoutMs)
{
    if (n > kMaxLineBytes)
        return -1;
    int budget = totalTimeoutMs;
    while (_buf.size() < n) {
        int rc = fill(stop, budget);
        if (rc != 1)
            return rc;
    }
    out.assign(_buf, 0, n);
    _buf.erase(0, n);
    return 1;
}

} // namespace ash::serve::net
