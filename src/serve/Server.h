/**
 * @file
 * The ash_serve daemon core: accept loops (unix socket + optional
 * localhost HTTP), thread-per-connection request handling, a worker
 * pool fed by the FairQueue, the hot DesignCache, the memoizing
 * ResultCache, and per-client accounting.
 *
 * REQUEST LIFE CYCLE
 *   parse -> (ping/stats/shutdown answered inline)
 *         -> resolve design + cache key
 *         -> memo hit?  answer inline, never queued ("memo")
 *         -> admit to FairQueue (per-client caps / rate limit)
 *         -> worker: compile-or-reuse program ("cold"/"warm"),
 *            run the job under a single-job SweepRunner (watchdog
 *            deadline, optional --isolate, prof JobCost billing),
 *            memoize, fulfill the connection's future.
 *
 * The per-request SweepRunner is deliberate reuse, not overhead:
 * it buys the daemon the exact failure envelope the batch benches
 * already trust (structured FailureKind, watchdog timeout, fork
 * isolation, fault-injection scope = the job key, which embeds the
 * client name so fault plans can target one tenant).
 *
 * SHUTDOWN: requestStop() closes admission; stop() then joins the
 * accept loops, lets workers drain every admitted request (their
 * SweepRunners run with drainOnShutdown=false so in-flight work
 * completes and is ANSWERED even though the process-wide shutdown
 * flag is up), joins connection threads once their last response is
 * written, persists the result cache, and removes the socket file.
 */

#ifndef ASH_SERVE_SERVER_H
#define ASH_SERVE_SERVER_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "pool/Supervisor.h"
#include "serve/DesignCache.h"
#include "serve/FairQueue.h"
#include "serve/Protocol.h"
#include "serve/ResultCache.h"

namespace ash::exec {
class JobContext;
}

namespace ash::serve {

struct ServerOptions
{
    std::string socketPath;
    /** Enable the localhost HTTP endpoint (0 = ephemeral port). */
    bool httpEnabled = false;
    uint16_t httpPort = 0;
    unsigned workers = 2;
    uint64_t designCacheBytes = 256ull << 20;
    size_t resultEntries = 4096;
    /** Warm-restart state directory; "" disables persistence. */
    std::string stateDir;
    /** Per-request watchdog deadline, seconds; 0 disables. */
    double deadlineSec = 0.0;
    /** Fork-isolate each request's job body. */
    bool isolate = false;
    QueueLimits limits;

    /**
     * Run sim jobs in the supervised worker-process pool (src/pool)
     * instead of in the daemon's own worker threads. One pool slot
     * per worker thread; a crashing kernel takes out its worker
     * process, not the daemon, and the request comes back as a
     * structured worker_crash failure.
     */
    bool pool = false;
    /** Circuit-breaker policy (pool mode), keyed by design
     *  fingerprint. */
    pool::BreakerOptions breaker;
    /** Shed (structured "overloaded") any admitted request whose
     *  queue wait exceeded this budget, ms; 0 disables. */
    uint64_t queueWaitBudgetMs = 0;
};

/** The daemon; one instance per process (tests embed several,
 *  sequentially, to model restarts). */
class Server
{
  public:
    explicit Server(ServerOptions opts);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, load persisted results, spawn threads. */
    bool start(std::string *err);

    /** Begin a graceful drain (async-signal-safe enough for a
     *  signal-watching main loop; NOT an async handler itself). */
    void requestStop();

    bool stopRequested() const
    {
        return _stopping.load(std::memory_order_relaxed);
    }

    /** Full drain + join + persist; idempotent. */
    void stop();

    /** Resolved HTTP port (after start, when enabled). */
    uint16_t httpPort() const { return _httpPort; }

    const ServerOptions &options() const { return _opts; }

    /** The /stats payload (also what the "stats" op returns). */
    std::string statsPayload();

    /** Requests fully answered so far (all classes + errors). */
    uint64_t answered() const
    {
        return _answered.load(std::memory_order_relaxed);
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Pending
    {
        SimRequest req;
        const DesignEntry *entry = nullptr;
        std::string key;
        Clock::time_point arrival{};
        Clock::time_point enqueued{};
        std::promise<std::string> promise;
    };

    /** Reservoir-free latency record; daemon-scale request counts
     *  fit in memory comfortably. */
    struct LatencyRec
    {
        std::vector<double> ms;
        void add(double v) { ms.push_back(v); }
        double percentile(double p) const;
    };

    struct ClientAcct
    {
        uint64_t requests = 0;
        uint64_t errors = 0;
        uint64_t rejected = 0;
        uint64_t memo = 0;
        uint64_t warm = 0;
        uint64_t cold = 0;
        double billedWallSec = 0.0;
        double billedCpuSec = 0.0;
        LatencyRec lat;
    };

    void acceptLoop(int listenFd, bool http);
    void handleConnection(int fd);
    void handleHttpConnection(int fd);

    /** One request line -> one response envelope (may block on a
     *  worker future). */
    std::string handleLine(const std::string &line);

    void workerLoop();

    /** Worker side: execute p's simulation and fulfill its promise. */
    void execute(Pending &p);

    /** Run the request as a single-job sweep; returns the payload.
     *  @p deadlineMs overrides the server-wide deadline when > 0
     *  (pool mode propagates the request's remaining budget). */
    std::string runJob(const SimRequest &req, const DesignEntry &entry,
                       const core::TaskProgram *prog,
                       const std::string &key,
                       uint64_t deadlineMs = 0);

    /** Pool-worker side (runs in the forked child): one request in,
     *  one reply out. */
    pool::WorkReply poolWork(const pool::WorkRequest &wr);

    /** Deterministic result payload from a completed job context. */
    static std::string buildResultPayload(const SimRequest &req,
                                          const std::string &key,
                                          const exec::JobContext &job);

    void account(const std::string &client, const char *cls,
                 double latencyMs, bool error, double wallSec,
                 double cpuSec);
    void accountRejected(const std::string &client);

    /** Reap finished connection threads; join the rest on stop. */
    void reapConnections(bool joinAll);

    ServerOptions _opts;
    DesignRegistry _registry;
    DesignCache _designs;
    ResultCache _results;
    FairQueue _queue;
    std::unique_ptr<pool::Supervisor> _pool;

    int _unixFd = -1;
    int _httpFd = -1;
    uint16_t _httpPort = 0;
    std::atomic<bool> _stopping{false};
    bool _started = false;
    bool _stopped = false;
    Clock::time_point _startedAt{};

    std::vector<std::thread> _acceptThreads;
    std::vector<std::thread> _workers;

    struct Conn
    {
        std::thread thread;
        std::atomic<bool> finished{false};
    };
    std::mutex _connMutex;
    std::list<Conn> _conns;

    std::mutex _acctMutex;
    std::map<std::string, ClientAcct> _acct;
    LatencyRec _latMemo, _latWarm, _latCold;
    std::atomic<uint64_t> _answered{0};
    std::atomic<uint64_t> _seq{0};   ///< Job-key sequence.

    /// @name Overload-shedding counters (see statsPayload "shed").
    /// @{
    std::atomic<uint64_t> _shedQueueWait{0};
    std::atomic<uint64_t> _shedDeadline{0};
    /// @}
};

} // namespace ash::serve

#endif // ASH_SERVE_SERVER_H
