#include "serve/DesignCache.h"

#include "ckpt/Checkpoint.h"
#include "common/Logging.h"
#include "prof/Prof.h"
#include "serve/Protocol.h"

namespace ash::serve {

DesignRegistry::DesignRegistry()
{
    for (designs::Design &d : designs::allDesigns())
        _sources.emplace(d.name, std::move(d));
}

const DesignEntry *
DesignRegistry::get(const std::string &name)
{
    std::shared_future<const DesignEntry *> future;
    std::shared_ptr<std::packaged_task<const DesignEntry *()>> task;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto built = _built.find(name);
        if (built != _built.end())
            return built->second.get();
        auto src = _sources.find(name);
        if (src == _sources.end())
            return nullptr;
        auto building = _building.find(name);
        if (building == _building.end()) {
            // First toucher elaborates (outside the lock, below);
            // concurrent callers block on the shared future instead
            // of duplicating the work.
            const designs::Design *design = &src->second;
            task = std::make_shared<
                std::packaged_task<const DesignEntry *()>>(
                [this, name, design]() -> const DesignEntry * {
                    ASH_PROF_ZONE("serve.elaborate");
                    auto entry = std::make_unique<DesignEntry>();
                    entry->design = *design;
                    entry->netlist = designs::compileDesign(*design);
                    entry->fingerprint =
                        ckpt::designFingerprint(entry->netlist);
                    std::lock_guard<std::mutex> relock(_mutex);
                    auto [it, inserted] =
                        _built.emplace(name, std::move(entry));
                    (void)inserted;
                    return it->second.get();
                });
            building = _building.emplace(name,
                                         task->get_future().share())
                           .first;
        }
        future = building->second;
    }
    if (task)
        (*task)();
    return future.get();
}

std::vector<std::string>
DesignRegistry::names() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    std::vector<std::string> out;
    out.reserve(_sources.size());
    for (const auto &[name, design] : _sources)
        out.push_back(name);
    return out;
}

uint64_t
programBytes(const core::TaskProgram &prog)
{
    uint64_t bytes = sizeof(core::TaskProgram);
    bytes += prog.taskOfNode.capacity() * sizeof(core::TaskId);
    for (const core::Task &t : prog.tasks) {
        bytes += sizeof(core::Task);
        bytes += t.nodes.capacity() * sizeof(rtl::NodeId);
        bytes += t.directInputs.capacity() * sizeof(rtl::NodeId);
        bytes += t.bufferedInputs.capacity() * sizeof(rtl::NodeId);
        bytes += t.bufferParents.capacity() * sizeof(core::TaskId);
        bytes += t.argSlotOf.capacity() *
                 sizeof(std::pair<rtl::NodeId, uint32_t>);
    }
    return bytes;
}

std::shared_ptr<const core::TaskProgram>
DesignCache::get(const DesignEntry &entry, uint32_t tiles,
                 uint64_t progHash, bool &compiledNow)
{
    const std::string key = cacheKey(entry.fingerprint, progHash);
    std::shared_future<std::shared_ptr<const core::TaskProgram>>
        future;
    std::shared_ptr<
        std::packaged_task<std::shared_ptr<const core::TaskProgram>()>>
        task;

    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _slots.find(key);
        if (it != _slots.end()) {
            ++_hits;
            it->second.lastUse = ++_clock;
            compiledNow = false;
            return it->second.future.get();
        }
        ++_misses;
        compiledNow = true;
        task = std::make_shared<std::packaged_task<
            std::shared_ptr<const core::TaskProgram>()>>(
            [&entry, tiles]() {
                ASH_PROF_ZONE("serve.compile");
                core::CompilerOptions opts;
                opts.numTiles = tiles;
                auto prog = std::make_shared<core::TaskProgram>(
                    core::compile(entry.netlist, opts));
                return std::shared_ptr<const core::TaskProgram>(
                    std::move(prog));
            });
        Slot slot;
        slot.future = task->get_future().share();
        slot.lastUse = ++_clock;
        future = slot.future;
        _slots.emplace(key, std::move(slot));
    }

    // Compile outside the lock; concurrent same-key callers block on
    // the shared future above instead (and report warm).
    (*task)();
    auto prog = future.get();

    {
        std::lock_guard<std::mutex> lock(_mutex);
        auto it = _slots.find(key);
        if (it != _slots.end() && it->second.bytes == 0) {
            it->second.bytes = programBytes(*prog);
            _bytes += it->second.bytes;
            evictLocked();
        }
    }
    return prog;
}

void
DesignCache::evictLocked()
{
    while (_bytes > _budgetBytes && _slots.size() > 1) {
        auto victim = _slots.end();
        for (auto it = _slots.begin(); it != _slots.end(); ++it) {
            // In-flight compiles (bytes == 0) are not evictable:
            // their size is unknown and a waiter holds the future.
            if (it->second.bytes == 0)
                continue;
            if (victim == _slots.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        if (victim == _slots.end())
            return;
        _bytes -= victim->second.bytes;
        ++_evictions;
        debugLog("serve: design cache evicted %s (%llu bytes)",
                 victim->first.c_str(),
                 (unsigned long long)victim->second.bytes);
        _slots.erase(victim);
    }
}

DesignCache::Snapshot
DesignCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Snapshot s;
    s.hits = _hits;
    s.misses = _misses;
    s.evictions = _evictions;
    s.bytes = _bytes;
    s.entries = _slots.size();
    return s;
}

} // namespace ash::serve
