/**
 * @file
 * The daemon's design layer: a registry of servable designs (name ->
 * elaborated netlist + structural fingerprint, built once per
 * process) and the hot design cache (compiled TaskPrograms, LRU by
 * estimated bytes).
 *
 * Registry entries are never evicted: a cached TaskProgram holds a
 * pointer to the netlist it was compiled from, so netlists must
 * outlive every program compiled from them — and there are only a
 * handful of generator designs, so pinning them is cheap.
 *
 * The program cache deduplicates concurrent compiles with a shared
 * future per key (the same trick bench::compileFor uses): N clients
 * cold-missing the same (design, tiles) pay for ONE compile, and the
 * first requester is the only "cold" one — the rest are reported
 * warm, because by the time they run the program is hot.
 */

#ifndef ASH_SERVE_DESIGNCACHE_H
#define ASH_SERVE_DESIGNCACHE_H

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/compiler/Compiler.h"
#include "designs/Designs.h"
#include "rtl/Netlist.h"

namespace ash::serve {

/** One servable design, pinned for the life of the daemon. */
struct DesignEntry
{
    designs::Design design;
    rtl::Netlist netlist;
    uint64_t fingerprint = 0;   ///< ckpt::designFingerprint(netlist).
};

/** Name -> pinned DesignEntry; elaborates lazily, once per design. */
class DesignRegistry
{
  public:
    DesignRegistry();

    /**
     * The entry for @p name, elaborating Verilog -> netlist on first
     * touch (concurrent callers wait; later callers pay nothing).
     * Returns nullptr for unknown names.
     */
    const DesignEntry *get(const std::string &name);

    /** Servable design names, sorted. */
    std::vector<std::string> names() const;

  private:
    mutable std::mutex _mutex;
    std::map<std::string, designs::Design> _sources;
    std::map<std::string, std::shared_future<const DesignEntry *>>
        _building;
    /** Built entries; pointers into this map are stable (unique_ptr). */
    std::map<std::string, std::unique_ptr<DesignEntry>> _built;
};

/** Compiled-program LRU keyed by (fingerprint, program hash). */
class DesignCache
{
  public:
    struct Snapshot
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t bytes = 0;
        uint64_t entries = 0;
    };

    explicit DesignCache(uint64_t budgetBytes)
        : _budgetBytes(budgetBytes)
    {
    }

    /**
     * The compiled program for (@p entry, @p tiles), compiling on
     * miss. @p compiledNow reports whether THIS caller triggered the
     * compile (the request is "cold") or found it hot ("warm").
     * Shared-pointer handout keeps a program alive for running jobs
     * even if the LRU evicts it meanwhile.
     */
    std::shared_ptr<const core::TaskProgram>
    get(const DesignEntry &entry, uint32_t tiles, uint64_t progHash,
        bool &compiledNow);

    Snapshot stats() const;

  private:
    struct Slot
    {
        std::shared_future<std::shared_ptr<const core::TaskProgram>>
            future;
        uint64_t bytes = 0;     ///< 0 until the compile finishes.
        uint64_t lastUse = 0;
    };

    /** Caller holds _mutex. Evict LRU slots until under budget. */
    void evictLocked();

    mutable std::mutex _mutex;
    std::map<std::string, Slot> _slots;
    uint64_t _budgetBytes;
    uint64_t _clock = 0;
    uint64_t _bytes = 0;
    uint64_t _hits = 0;
    uint64_t _misses = 0;
    uint64_t _evictions = 0;
};

/** Rough resident size of a compiled program (cache accounting). */
uint64_t programBytes(const core::TaskProgram &prog);

} // namespace ash::serve

#endif // ASH_SERVE_DESIGNCACHE_H
