/**
 * @file
 * ash_served: the simulation-as-a-service daemon. Binds a unix
 * socket (and optionally a localhost HTTP port), serves sim/stats
 * requests until SIGINT/SIGTERM or a client "shutdown" op, then
 * drains gracefully: admission closes immediately, every admitted
 * request is still answered, the memo cache is persisted for a warm
 * restart, and the process exits 0.
 *
 *   ash_served --socket /tmp/ash.sock [--http PORT] [--workers N]
 *              [--cache-mb MB] [--result-entries N]
 *              [--state-dir DIR] [--deadline SEC] [--isolate]
 *              [--rate R] [--burst N] [--inflight N]
 *              [--queue-cap N] [--queue-global N]
 *              [--queue-wait-budget-ms N] [--no-pool]
 *              [--breaker-k N] [--breaker-window-ms N]
 *              [--breaker-cooldown-ms N] [--fault-plan SPEC]
 *              [--prof-json PATH]
 *
 * The daemon runs sim jobs in a supervised worker-process pool by
 * default (src/pool): a crashing kernel kills its worker, not the
 * daemon, and comes back as a structured worker_crash failure while
 * the supervisor respawns the slot. --no-pool reverts to in-process
 * worker threads (the pre-pool behavior; used by embedded tests).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/Logging.h"
#include "common/Shutdown.h"
#include "guard/Fault.h"
#include "prof/Prof.h"
#include "serve/Server.h"

using namespace ash;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --socket PATH [--http PORT] [--workers N]\n"
        "          [--cache-mb MB] [--result-entries N]\n"
        "          [--state-dir DIR] [--deadline SEC] [--isolate]\n"
        "          [--rate REQ_PER_SEC] [--burst N] [--inflight N]\n"
        "          [--queue-cap N] [--queue-global N]\n"
        "          [--queue-wait-budget-ms N] [--no-pool]\n"
        "          [--breaker-k N] [--breaker-window-ms N]\n"
        "          [--breaker-cooldown-ms N] [--fault-plan SPEC]\n"
        "          [--prof-json PATH]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    serve::ServerOptions opts;
    opts.pool = true;   // Crash containment on by default; --no-pool
                        // reverts to in-process worker threads.
    std::string faultPlan;
    std::string profJson;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto value = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v;
        if (std::strcmp(arg, "--socket") == 0 && (v = value()))
            opts.socketPath = v;
        else if (std::strcmp(arg, "--http") == 0 && (v = value())) {
            opts.httpEnabled = true;
            opts.httpPort = static_cast<uint16_t>(std::atoi(v));
        } else if (std::strcmp(arg, "--workers") == 0 &&
                   (v = value()))
            opts.workers = static_cast<unsigned>(std::atoi(v));
        else if (std::strcmp(arg, "--cache-mb") == 0 && (v = value()))
            opts.designCacheBytes =
                static_cast<uint64_t>(std::atoll(v)) << 20;
        else if (std::strcmp(arg, "--result-entries") == 0 &&
                 (v = value()))
            opts.resultEntries = static_cast<size_t>(std::atoll(v));
        else if (std::strcmp(arg, "--state-dir") == 0 && (v = value()))
            opts.stateDir = v;
        else if (std::strcmp(arg, "--deadline") == 0 && (v = value()))
            opts.deadlineSec = std::atof(v);
        else if (std::strcmp(arg, "--isolate") == 0)
            opts.isolate = true;
        else if (std::strcmp(arg, "--rate") == 0 && (v = value()))
            opts.limits.ratePerSec = std::atof(v);
        else if (std::strcmp(arg, "--burst") == 0 && (v = value()))
            opts.limits.burst = std::atof(v);
        else if (std::strcmp(arg, "--inflight") == 0 && (v = value()))
            opts.limits.maxInFlightPerClient =
                static_cast<size_t>(std::atoll(v));
        else if (std::strcmp(arg, "--queue-cap") == 0 && (v = value()))
            opts.limits.maxQueuedPerClient =
                static_cast<size_t>(std::atoll(v));
        else if (std::strcmp(arg, "--queue-global") == 0 &&
                 (v = value()))
            opts.limits.maxQueuedGlobal =
                static_cast<size_t>(std::atoll(v));
        else if (std::strcmp(arg, "--queue-wait-budget-ms") == 0 &&
                 (v = value()))
            opts.queueWaitBudgetMs =
                static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--no-pool") == 0)
            opts.pool = false;
        else if (std::strcmp(arg, "--breaker-k") == 0 && (v = value()))
            opts.breaker.threshold = std::atoi(v);
        else if (std::strcmp(arg, "--breaker-window-ms") == 0 &&
                 (v = value()))
            opts.breaker.windowMs =
                static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--breaker-cooldown-ms") == 0 &&
                 (v = value()))
            opts.breaker.cooldownMs =
                static_cast<uint64_t>(std::atoll(v));
        else if (std::strcmp(arg, "--fault-plan") == 0 &&
                 (v = value()))
            faultPlan = v;
        else if (std::strcmp(arg, "--prof-json") == 0 && (v = value()))
            profJson = v;
        else
            return usage(argv[0]);
    }
    if (opts.socketPath.empty())
        return usage(argv[0]);

    if (!faultPlan.empty()) {
        guard::FaultPlan plan;
        std::string err;
        if (!guard::FaultPlan::parse(faultPlan, plan, &err)) {
            std::fprintf(stderr, "%s\n", err.c_str());
            return 2;
        }
        guard::FaultInjector::instance().arm(std::move(plan));
        warn("serve: fault injection armed: %s", faultPlan.c_str());
    }
    if (!profJson.empty()) {
        prof::Profiler &prof = prof::Profiler::instance();
        prof.setJsonPath(profJson);
        prof.setHwCountersEnabled(false);
        prof.arm();
    }

    installShutdownSignalHandlers();

    serve::Server server(opts);
    std::string err;
    if (!server.start(&err)) {
        std::fprintf(stderr, "ash_served: %s\n", err.c_str());
        return 1;
    }

    // Serve until a signal lands or a client sends the shutdown op.
    while (!shutdownRequested() && !server.stopRequested())
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    server.stop();
    if (!profJson.empty())
        prof::Profiler::instance().finish();
    return 0;
}
