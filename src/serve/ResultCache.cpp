#include "serve/ResultCache.h"

#include <cstdio>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "ckpt/Snapshot.h"
#include "common/Json.h"
#include "common/Logging.h"
#include "common/TmpPath.h"
#include "guard/Fault.h"

namespace ash::serve {

namespace {

constexpr const char *kFormat = "ash-serve-results";
constexpr uint32_t kVersion = 1;

std::string
crcHex(const std::string &payload)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08x",
                  ckpt::crc32(payload.data(), payload.size()));
    return buf;
}

} // namespace

ResultCache::ResultCache(size_t maxEntries, std::string dir)
    : _maxEntries(maxEntries ? maxEntries : 1), _dir(std::move(dir))
{
    if (!_dir.empty())
        ::mkdir(_dir.c_str(), 0777);   // Best effort; write reports.
}

std::string
ResultCache::manifestPath() const
{
    return _dir.empty() ? "" : _dir + "/results-manifest.json";
}

bool
ResultCache::get(const std::string &key, std::string &payloadOut)
{
    std::lock_guard<std::mutex> lock(_mutex);
    auto it = _entries.find(key);
    if (it == _entries.end()) {
        ++_misses;
        return false;
    }
    ++_hits;
    it->second.lastUse = ++_clock;
    payloadOut = it->second.payload;
    return true;
}

void
ResultCache::put(const std::string &key, std::string payload)
{
    std::lock_guard<std::mutex> lock(_mutex);
    ++_inserts;
    Entry &e = _entries[key];
    e.payload = std::move(payload);
    e.lastUse = ++_clock;
    while (_entries.size() > _maxEntries) {
        auto victim = _entries.end();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (victim == _entries.end() ||
                it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        _entries.erase(victim);
        ++_evictions;
    }
}

size_t
ResultCache::load()
{
    std::string path = manifestPath();
    if (path.empty())
        return 0;

    std::string text;
    {
        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f)
            return 0;   // First start over this directory.
        char buf[65536];
        size_t n;
        while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }

    JsonValue doc;
    std::string err;
    if (!jsonParse(text, doc, &err) || !doc.isObject() ||
        !doc["format"].isString() ||
        doc["format"].string() != kFormat) {
        warn("serve: ignoring unreadable result manifest %s (%s)",
             path.c_str(), err.empty() ? "bad format" : err.c_str());
        return 0;
    }

    size_t loaded = 0;
    std::lock_guard<std::mutex> lock(_mutex);
    for (const JsonValue &e : doc["entries"].array()) {
        if (!e.isObject() || !e["key"].isString() ||
            !e["payload"].isString() || !e["crc"].isString()) {
            ++_dropped;
            continue;
        }
        const std::string &key = e["key"].string();
        const std::string &payload = e["payload"].string();
        if (crcHex(payload) != e["crc"].string()) {
            warn("serve: dropping memo entry %s (CRC mismatch)",
                 key.c_str());
            ++_dropped;
            continue;
        }
        Entry &slot = _entries[key];
        slot.payload = payload;
        slot.lastUse = ++_clock;
        ++loaded;
        if (_entries.size() > _maxEntries)
            break;   // Manifest larger than our budget; keep oldest-
                     // loaded prefix, the rest re-memoizes naturally.
    }
    _loaded += loaded;
    return loaded;
}

size_t
ResultCache::persist()
{
    std::string path = manifestPath();
    if (path.empty())
        return 0;

    std::string doc;
    size_t count = 0;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        JsonWriter w(false);
        w.beginObject();
        w.kv("format", kFormat);
        w.kv("version", kVersion);
        w.key("entries").beginArray();
        for (const auto &[key, entry] : _entries) {
            w.beginObject();
            w.kv("key", key);
            w.kv("crc", crcHex(entry.payload));
            w.kv("payload", entry.payload);
            w.endObject();
            ++count;
        }
        w.endArray();
        w.endObject();
        doc = w.str();
    }

    try {
        ASH_FAULT_POINT("serve.results.write");
        // Unique tmp name: the state directory may be shared with
        // another daemon; see common/TmpPath.h.
        std::string tmp = uniqueTmpPath(path);
        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            warn("serve: cannot write result manifest %s",
                 tmp.c_str());
            return 0;
        }
        bool ok =
            std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
        // fsync BEFORE the rename: the rename must never become
        // visible ahead of the bytes it names, or a crash between
        // the two leaves a torn manifest under the final name — the
        // atomic-rename pattern is only atomic if the data is
        // durable first.
        ok = (std::fflush(f) == 0) && ok;
        ok = (::fsync(::fileno(f)) == 0) && ok;
        ok = (std::fclose(f) == 0) && ok;
        if (!ok || std::rename(tmp.c_str(), path.c_str()) != 0) {
            warn("serve: failed to publish result manifest %s",
                 path.c_str());
            std::remove(tmp.c_str());
            return 0;
        }
        // And fsync the parent directory AFTER the rename, so the
        // new directory entry itself survives a power cut.
        int dirFd = ::open(_dir.c_str(), O_RDONLY | O_DIRECTORY);
        if (dirFd >= 0) {
            ::fsync(dirFd);
            ::close(dirFd);
        }
    } catch (const Error &e) {
        warn("serve: result persist failed: %s", e.what());
        return 0;
    }
    return count;
}

ResultCache::Snapshot
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    Snapshot s;
    s.hits = _hits;
    s.misses = _misses;
    s.inserts = _inserts;
    s.evictions = _evictions;
    s.entries = _entries.size();
    s.loaded = _loaded;
    s.dropped = _dropped;
    return s;
}

} // namespace ash::serve
