/**
 * @file
 * Socket plumbing for ash_serve: unix-domain and localhost-TCP
 * listeners, blocking client connects, and a stop-aware buffered
 * line reader. Everything here is deliberately boring POSIX; the
 * interesting policy (framing, queuing, caching) lives above it in
 * Protocol/Server.
 *
 * All reads go through LineReader, which polls in short slices so a
 * blocked connection thread notices a daemon drain within ~100 ms
 * without per-connection signal games. All writes use MSG_NOSIGNAL:
 * a peer that disappeared mid-response must surface as a write error
 * on that connection, never as a process-wide SIGPIPE.
 */

#ifndef ASH_SERVE_NET_H
#define ASH_SERVE_NET_H

#include <atomic>
#include <cstdint>
#include <string>

namespace ash::serve::net {

/**
 * Bind + listen on a unix-domain socket at @p path, unlinking any
 * stale socket file first. Returns the listen fd, or -1 with a
 * message in @p err. Paths longer than sockaddr_un allows (~107
 * bytes) are rejected — callers should keep daemon sockets short
 * (e.g. under /tmp).
 */
int listenUnix(const std::string &path, std::string *err);

/**
 * Bind + listen on 127.0.0.1:@p port (0 = kernel-chosen ephemeral
 * port; read it back with localPort()). Localhost only, on purpose:
 * the HTTP endpoint is a convenience, not a network service.
 */
int listenTcp(uint16_t port, std::string *err);

/** Resolved local port of a bound TCP fd (0 on error). */
uint16_t localPort(int fd);

/**
 * Accept one connection, waiting at most @p timeoutMs. Returns the
 * connection fd, or -1 on timeout/error — callers poll this in a
 * loop and check their stop flag between calls.
 */
int acceptClient(int listenFd, int timeoutMs);

/** Connect to a unix socket; fd or -1 with @p err. */
int connectUnix(const std::string &path, std::string *err);

/** Connect to 127.0.0.1:@p port; fd or -1 with @p err. */
int connectTcp(uint16_t port, std::string *err);

/** Write all of @p data (MSG_NOSIGNAL); false on any failure. */
bool writeAll(int fd, const void *data, size_t len);
bool writeAll(int fd, const std::string &data);

/**
 * Buffered line reader over one socket. readLine() returns
 *   1  a complete '\n'-terminated line (newline stripped) in @p out,
 *   0  stop flag set or total timeout expired (connection intact),
 *  -1  EOF or socket error.
 * The 100 ms poll slice bounds how stale the stop check can get.
 */
class LineReader
{
  public:
    explicit LineReader(int fd) : _fd(fd) {}

    int readLine(std::string &out, const std::atomic<bool> *stop,
                 int totalTimeoutMs);

    /**
     * Read exactly @p n further bytes (HTTP bodies). Same return
     * convention as readLine(), with the bytes in @p out.
     */
    int readExact(size_t n, std::string &out,
                  const std::atomic<bool> *stop, int totalTimeoutMs);

  private:
    /** Pull more bytes into _buf; same return convention. */
    int fill(const std::atomic<bool> *stop, int &budgetMs);

    int _fd;
    std::string _buf;
};

} // namespace ash::serve::net

#endif // ASH_SERVE_NET_H
