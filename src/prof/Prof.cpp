#include "prof/Prof.h"

#include <algorithm>
#include <cinttypes>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <memory>
#include <ostream>
#include <thread>

#include "common/BuildInfo.h"
#include "common/Json.h"
#include "common/Logging.h"

#ifdef __linux__
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace ash::prof {

namespace {

uint64_t
wallNowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

uint64_t
threadCpuNowNs()
{
#ifdef __linux__
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0;
    return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<uint64_t>(ts.tv_nsec);
#else
    return 0;
#endif
}

/** Process user+system CPU seconds (getrusage). */
double
processCpuSec()
{
#ifdef __linux__
    rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0.0;
    auto tv = [](const timeval &t) {
        return double(t.tv_sec) + double(t.tv_usec) * 1e-6;
    };
    return tv(ru.ru_utime) + tv(ru.ru_stime);
#else
    return 0.0;
#endif
}

/** Process peak RSS in KiB (getrusage high-water mark). */
long
peakRssKb()
{
#ifdef __linux__
    rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss;
#else
    return 0;
#endif
}

/** Current RSS in KiB via /proc/self/statm; 0 when unreadable. */
long
currentRssKb()
{
#ifdef __linux__
    std::FILE *f = std::fopen("/proc/self/statm", "r");
    if (!f)
        return 0;
    long sizePages = 0;
    long rssPages = 0;
    int n = std::fscanf(f, "%ld %ld", &sizePages, &rssPages);
    std::fclose(f);
    if (n != 2)
        return 0;
    long pageKb = sysconf(_SC_PAGESIZE) / 1024;
    return rssPages * (pageKb > 0 ? pageKb : 4);
#else
    return 0;
#endif
}

/** One in-flight zone on a thread's stack. */
struct Frame
{
    uint64_t wall0 = 0;
    uint64_t cpu0 = 0;
    uint64_t childWallNs = 0;   ///< Filled by exiting children.
    size_t pathLen = 0;         ///< tlsPath length BEFORE this frame.
    HwCounters::Values hw0;
    bool hw = false;            ///< hw0 captured successfully.
};

/** Per-thread zone state. The path string grows "a/b/c" as zones
 *  nest, so exit never re-joins names. */
thread_local std::vector<Frame> tlsStack;
thread_local std::string tlsPath;

/** Per-thread counter group, opened lazily on first armed zone. */
thread_local std::unique_ptr<HwCounters> tlsHw;
thread_local bool tlsHwTried = false;

} // namespace

Profiler &
Profiler::instance()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::setJsonPath(std::string path)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _jsonPath = std::move(path);
}

void
Profiler::setJsonlPath(std::string path)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _jsonlPath = std::move(path);
}

void
Profiler::setProgressPeriodSec(double sec)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _progressPeriodSec = sec > 0 ? sec : 0.0;
}

void
Profiler::setSamplePeriodMs(uint64_t ms)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _samplePeriodMs = ms == 0 ? 1 : ms;
}

void
Profiler::setHwCountersEnabled(bool on)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _hwWanted = on;
}

void
Profiler::arm()
{
    if (enabled())
        return;
    bool wantMonitor = false;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _zones.clear();
        _jobs.clear();
        _batches.clear();
        _hwSeen = false;
        _hwError.clear();
        _epochNs = wallNowNs();
        wantMonitor =
            !_jsonlPath.empty() || _progressPeriodSec > 0.0;
    }
    _jobsTotal.store(0, std::memory_order_relaxed);
    _jobsDone.store(0, std::memory_order_relaxed);
    _sweepActive.store(false, std::memory_order_relaxed);
    _sEnabled.store(true, std::memory_order_relaxed);
    if (wantMonitor) {
        _monitorStop.store(false, std::memory_order_relaxed);
        _monitorThread = new std::thread([this] { monitorLoop(); });
    }
}

void
Profiler::disarm()
{
    _sEnabled.store(false, std::memory_order_relaxed);
    if (_monitorThread) {
        _monitorStop.store(true, std::memory_order_relaxed);
        auto *t = static_cast<std::thread *>(_monitorThread);
        t->join();
        delete t;
        _monitorThread = nullptr;
    }
}

void
Profiler::zoneEnter(const char *name)
{
    Frame f;
    f.pathLen = tlsPath.size();
    if (!tlsPath.empty())
        tlsPath += '/';
    tlsPath += name;

    // Lazy per-thread counter group. Open-failure is a supported
    // state (CI containers); remember the first reason for the
    // report and fall back to timers-only on this thread.
    if (_hwWanted && !tlsHwTried) {
        tlsHwTried = true;
        tlsHw = std::make_unique<HwCounters>();
        std::lock_guard<std::mutex> lock(_mutex);
        if (tlsHw->ok())
            _hwSeen = true;
        else if (_hwError.empty() && tlsHw->error())
            _hwError = tlsHw->error();
    }
    if (tlsHw && tlsHw->ok())
        f.hw = tlsHw->read(f.hw0);

    // Clocks last: keep instrumentation overhead outside the zone.
    f.cpu0 = threadCpuNowNs();
    f.wall0 = wallNowNs();
    tlsStack.push_back(f);
}

void
Profiler::zoneExit()
{
    if (tlsStack.empty())
        return;   // finish()/clear() raced a live zone; drop it.
    const uint64_t wall1 = wallNowNs();
    const uint64_t cpu1 = threadCpuNowNs();
    Frame f = tlsStack.back();
    tlsStack.pop_back();

    const uint64_t wallNs = wall1 > f.wall0 ? wall1 - f.wall0 : 0;
    const uint64_t cpuNs = cpu1 > f.cpu0 ? cpu1 - f.cpu0 : 0;
    HwCounters::Values hwDelta;
    bool hwOk = false;
    if (f.hw && tlsHw && tlsHw->read(hwDelta)) {
        hwDelta -= f.hw0;
        hwOk = true;
    }

    if (!tlsStack.empty())
        tlsStack.back().childWallNs += wallNs;

    {
        std::lock_guard<std::mutex> lock(_mutex);
        ZoneStat &z = _zones[tlsPath];
        ++z.count;
        z.wallNs += wallNs;
        z.cpuNs += cpuNs;
        z.childWallNs += f.childWallNs;
        if (hwOk) {
            z.hw.instructions += hwDelta.instructions;
            z.hw.cycles += hwDelta.cycles;
            z.hw.cacheMisses += hwDelta.cacheMisses;
            z.hw.branchMisses += hwDelta.branchMisses;
            ++z.hwSamples;
        }
    }
    tlsPath.resize(f.pathLen);
}

void
Profiler::progressBegin(size_t totalJobs)
{
    _jobsTotal.store(totalJobs, std::memory_order_relaxed);
    _jobsDone.store(0, std::memory_order_relaxed);
    _sweepStartNs.store(wallNowNs(), std::memory_order_relaxed);
    _sweepActive.store(true, std::memory_order_relaxed);
}

void
Profiler::progressJobDone()
{
    _jobsDone.fetch_add(1, std::memory_order_relaxed);
}

void
Profiler::progressEnd()
{
    // Print a final line so "done" is always visible, then go quiet.
    if (_progressPeriodSec > 0.0 &&
        _jobsTotal.load(std::memory_order_relaxed) != 0)
        printProgress();
    _sweepActive.store(false, std::memory_order_relaxed);
}

void
Profiler::addJobCost(const JobCost &cost)
{
    std::lock_guard<std::mutex> lock(_mutex);
    _jobs.push_back(cost);
}

void
Profiler::addBatchOccupancy(const std::string &batch,
                            size_t activeLanes, size_t width)
{
    std::lock_guard<std::mutex> lock(_mutex);
    BatchOccupancy &b = _batches[batch];
    b.attempts += 1;
    b.activeLanes += activeLanes;
    b.width = width;
}

std::map<std::string, BatchOccupancy>
Profiler::batchOccupancy() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _batches;
}

std::map<std::string, ZoneStat>
Profiler::zones() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _zones;
}

std::vector<JobCost>
Profiler::jobCosts() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _jobs;
}

bool
Profiler::hwAvailable() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hwSeen;
}

std::string
Profiler::hwError() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _hwError;
}

void
Profiler::printProgress()
{
    const uint64_t total = _jobsTotal.load(std::memory_order_relaxed);
    const uint64_t done = _jobsDone.load(std::memory_order_relaxed);
    const uint64_t t0 = _sweepStartNs.load(std::memory_order_relaxed);
    const double elapsed = (wallNowNs() - t0) * 1e-9;
    const double rate = elapsed > 0 ? double(done) / elapsed : 0.0;
    double eta = -1.0;
    if (rate > 0 && done < total)
        eta = double(total - done) / rate;
    // stderr, never stdout: the determinism boundary.
    if (eta >= 0)
        std::fprintf(stderr,
                     "[prof] progress: %" PRIu64 "/%" PRIu64
                     " jobs (%.1f%%), %.2f jobs/s, eta %.1fs\n",
                     done, total,
                     total ? 100.0 * double(done) / double(total)
                           : 100.0,
                     rate, eta);
    else
        std::fprintf(stderr,
                     "[prof] progress: %" PRIu64 "/%" PRIu64
                     " jobs (%.1f%%), %.2f jobs/s\n",
                     done, total,
                     total ? 100.0 * double(done) / double(total)
                           : 100.0,
                     rate);
}

void
Profiler::sampleNow(std::ostream &out)
{
    uint64_t epoch;
    size_t zoneCount;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        epoch = _epochNs;
        zoneCount = _zones.size();
    }
    JsonWriter w(/*pretty=*/false);
    w.beginObject();
    w.kv("t_sec", (wallNowNs() - epoch) * 1e-9);
    w.kv("cpu_sec", processCpuSec());
    w.kv("rss_kb", int64_t(currentRssKb()));
    w.kv("peak_rss_kb", int64_t(peakRssKb()));
    w.kv("zones", uint64_t(zoneCount));
    if (_sweepActive.load(std::memory_order_relaxed)) {
        w.kv("jobs_done",
             _jobsDone.load(std::memory_order_relaxed));
        w.kv("jobs_total",
             _jobsTotal.load(std::memory_order_relaxed));
    }
    w.endObject();
    out << w.str() << "\n";
    out.flush();
}

void
Profiler::monitorLoop()
{
    std::string jsonlPath;
    double progressSec;
    uint64_t sampleMs;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        jsonlPath = _jsonlPath;
        progressSec = _progressPeriodSec;
        sampleMs = _samplePeriodMs;
    }
    std::ofstream jsonl;
    if (!jsonlPath.empty()) {
        jsonl.open(jsonlPath, std::ios::trunc);
        if (!jsonl)
            warn("cannot write prof JSONL to %s", jsonlPath.c_str());
    }

    using Clock = std::chrono::steady_clock;
    auto nextSample = Clock::now();
    auto nextBeat = Clock::now() +
                    std::chrono::milliseconds(
                        uint64_t(progressSec * 1000.0));
    while (!_monitorStop.load(std::memory_order_relaxed)) {
        auto now = Clock::now();
        if (jsonl && now >= nextSample) {
            sampleNow(jsonl);
            nextSample =
                now + std::chrono::milliseconds(sampleMs);
        }
        if (progressSec > 0.0 && now >= nextBeat) {
            if (_sweepActive.load(std::memory_order_relaxed))
                printProgress();
            nextBeat = now + std::chrono::milliseconds(
                                 uint64_t(progressSec * 1000.0));
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20));
    }
    if (jsonl)
        sampleNow(jsonl);   // Final sample closes the series.
}

std::string
Profiler::toJson(bool pretty) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    JsonWriter w(pretty);
    w.beginObject();
    w.key("build").beginObject();
    w.kv("git", buildinfo::kGitHash);
    w.kv("compiler", buildinfo::kCompiler);
    w.kv("build_type", buildinfo::kBuildType);
    w.kv("options", buildinfo::kOptions);
    w.endObject();
    w.kv("wall_sec", (wallNowNs() - _epochNs) * 1e-9);
    w.kv("cpu_sec", processCpuSec());
    w.kv("peak_rss_kb", int64_t(peakRssKb()));
    w.key("hw").beginObject();
    w.kv("available", _hwSeen);
    if (!_hwSeen && !_hwError.empty())
        w.kv("error", _hwError);
    w.endObject();

    w.key("zones").beginArray();
    for (const auto &[path, z] : _zones) {
        w.beginObject();
        w.kv("path", path);
        w.kv("count", z.count);
        w.kv("wall_sec", z.wallNs * 1e-9);
        w.kv("self_wall_sec", z.selfWallNs() * 1e-9);
        w.kv("cpu_sec", z.cpuNs * 1e-9);
        if (z.hwSamples != 0) {
            w.kv("instructions", z.hw.instructions);
            w.kv("cycles", z.hw.cycles);
            w.kv("cache_misses", z.hw.cacheMisses);
            w.kv("branch_misses", z.hw.branchMisses);
            if (z.hw.cycles != 0)
                w.kv("ipc", double(z.hw.instructions) /
                                double(z.hw.cycles));
        }
        w.endObject();
    }
    w.endArray();

    w.key("jobs").beginArray();
    for (const JobCost &j : _jobs) {
        w.beginObject();
        w.kv("job", j.job);
        w.kv("wall_sec", j.wallSec);
        w.kv("cpu_sec", j.cpuSec);
        w.kv("rss_delta_kb", int64_t(j.rssDeltaKb));
        w.kv("attempts", j.attempts);
        w.key("outcomes").beginArray();
        for (const std::string &o : j.attemptOutcomes)
            w.value(o);
        w.endArray();
        w.kv("failed", j.failed);
        w.kv("replayed", j.replayed);
        if (!j.batch.empty()) {
            w.kv("batch", j.batch);
            w.kv("lane", int64_t(j.lane));
            w.kv("lane_width", int64_t(j.laneWidth));
        }
        w.endObject();
    }
    w.endArray();

    // Lane batches: per-batch attempt counts and mean occupancy, so
    // batched time in the zones above attributes to real lane work.
    w.key("batches").beginArray();
    for (const auto &[name, b] : _batches) {
        w.beginObject();
        w.kv("batch", name);
        w.kv("attempts", b.attempts);
        w.kv("lane_width", b.width);
        w.kv("active_lane_sum", b.activeLanes);
        w.kv("occupancy", b.occupancy());
        w.endObject();
    }
    w.endArray();
    w.endObject();
    return w.str();
}

void
Profiler::printSlowestJobs() const
{
    std::vector<JobCost> jobs = jobCosts();
    if (jobs.empty())
        return;
    std::sort(jobs.begin(), jobs.end(),
              [](const JobCost &a, const JobCost &b) {
                  return a.wallSec > b.wallSec;
              });
    const size_t n = std::min<size_t>(jobs.size(), 10);
    std::fprintf(stderr,
                 "[prof] slowest %zu of %zu jobs "
                 "(wall-ms / cpu-ms / rss-delta-kb / attempts):\n",
                 n, jobs.size());
    for (size_t i = 0; i < n; ++i) {
        const JobCost &j = jobs[i];
        std::fprintf(stderr,
                     "[prof]   %8.1f %8.1f %8ld %2d  %s%s\n",
                     j.wallSec * 1e3, j.cpuSec * 1e3, j.rssDeltaKb,
                     j.attempts, j.job.c_str(),
                     j.failed     ? "  [FAILED]"
                     : j.replayed ? "  [replayed]"
                                  : "");
    }
}

int
Profiler::finish()
{
    std::string jsonPath;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        jsonPath = _jsonPath;
    }
    disarm();

    int rc = 0;
    if (!jsonPath.empty()) {
        std::string doc = toJson();
        std::string err;
        if (!jsonValid(doc, &err)) {
            warn("prof JSON failed self-validation: %s", err.c_str());
            rc = 1;
        }
        std::ofstream out(jsonPath, std::ios::trunc);
        if (!out) {
            warn("cannot write prof JSON to %s", jsonPath.c_str());
            rc = 1;
        } else {
            out << doc << "\n";
            out.flush();
            if (!out)
                rc = 1;
            else
                inform("wrote prof JSON: %s", jsonPath.c_str());
        }
    }
    printSlowestJobs();
    return rc;
}

void
Profiler::clear()
{
    disarm();
    std::lock_guard<std::mutex> lock(_mutex);
    _zones.clear();
    _jobs.clear();
    _batches.clear();
    _jsonPath.clear();
    _jsonlPath.clear();
    _progressPeriodSec = 0.0;
    _samplePeriodMs = 500;
    _hwWanted = true;
    _hwSeen = false;
    _hwError.clear();
    _jobsTotal.store(0, std::memory_order_relaxed);
    _jobsDone.store(0, std::memory_order_relaxed);
    _sweepActive.store(false, std::memory_order_relaxed);
}

} // namespace ash::prof
