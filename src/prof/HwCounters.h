/**
 * @file
 * Hardware performance counters for one host thread, read through
 * perf_event_open(2). Four counters are opened as one event group on
 * the calling thread — retired instructions, reference cycles, cache
 * misses, and branch mispredictions — so one read(2) returns a
 * coherent snapshot and zone deltas attribute counts to phases.
 *
 * CI containers, locked-down kernels (perf_event_paranoid >= 3), and
 * non-Linux hosts routinely deny the syscall; that is a supported
 * configuration, not an error. Construction then leaves the object in
 * the "unavailable" state (ok() == false, error() says why), read()
 * returns false, and the profiler degrades to timers-only output.
 * Nothing in the profiling layer may assume counters exist.
 *
 * Counters are per-thread (the group is bound to the calling thread
 * with inherit off), so each profiling thread owns its own instance;
 * see prof::Profiler's thread_local usage.
 */

#ifndef ASH_PROF_HWCOUNTERS_H
#define ASH_PROF_HWCOUNTERS_H

#include <cstdint>

namespace ash::prof {

/** Per-thread perf_event counter group; see file header. */
class HwCounters
{
  public:
    /** One coherent snapshot of the group's four counts. */
    struct Values
    {
        uint64_t instructions = 0;
        uint64_t cycles = 0;
        uint64_t cacheMisses = 0;
        uint64_t branchMisses = 0;

        Values &
        operator-=(const Values &o)
        {
            instructions -= o.instructions;
            cycles -= o.cycles;
            cacheMisses -= o.cacheMisses;
            branchMisses -= o.branchMisses;
            return *this;
        }
    };

    /** Open the group on the calling thread; never throws. */
    HwCounters();
    ~HwCounters();

    HwCounters(const HwCounters &) = delete;
    HwCounters &operator=(const HwCounters &) = delete;

    /** True when the kernel granted the full group. */
    bool ok() const { return _fds[0] >= 0; }

    /** Why the group is unavailable, or nullptr when ok(). */
    const char *error() const { return _error; }

    /**
     * Snapshot the group into @p out. Returns false (and leaves
     * @p out zeroed) when the group is unavailable or the read
     * fails — callers fall back to timers-only.
     */
    bool read(Values &out) const;

  private:
    /** Group leader + siblings; leader -1 = unavailable. A sibling's
     *  event dies when its fd closes, so all four stay open. */
    int _fds[4] = {-1, -1, -1, -1};
    const char *_error = nullptr;    ///< Static reason string.
};

} // namespace ash::prof

#endif // ASH_PROF_HWCOUNTERS_H
