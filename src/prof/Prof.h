/**
 * @file
 * ash_prof: host-side performance profiling for the whole toolchain.
 * Where ash_obs observes the *simulated* chip (per-tile events in
 * cycle time), ash_prof observes the *host* — where a run's real wall
 * clock goes (parse, elaborate, partition, compile, run, snapshot,
 * merge), what each sweep job costs in CPU and memory, and how the
 * hardware behaves underneath (instructions, cycles, cache misses).
 * It exists so perf work on the engines is argued from measured phase
 * breakdowns, not hunches, and so BENCH_hostperf.json regressions are
 * caught mechanically.
 *
 * Design discipline mirrors the event tracer (obs/Trace.h):
 *  1. Zero cost compiled out: -DASH_PROF=0 turns ASH_PROF_ZONE()
 *     into ((void)0) and ScopedZone into an empty object.
 *  2. One relaxed bool load when compiled in but disarmed (the
 *     default) — no clock reads, no allocation, no locks.
 *  3. Armed cost proportional to PHASE granularity: zones wrap
 *     parse/compile/run-scale regions, never per-cycle work, so two
 *     clock_gettime calls (plus one group read when hw counters are
 *     available) per zone entry/exit is negligible.
 *
 * DETERMINISM BOUNDARY: profiling output is timing-dependent by
 * nature, so it is written ONLY to its own sinks — the --prof-json
 * file, the --prof-jsonl file, and stderr (progress heartbeat,
 * slowest-jobs table). stdout and --stats-json never receive a byte
 * from this layer; the repo's "byte-identical at any --jobs count"
 * guarantee holds with profiling armed, and a ctest enforces it.
 *
 * Threading: zones nest per thread (a thread_local stack builds the
 * "a/b/c" path); exits fold into a mutexed process-wide aggregate
 * keyed by path. Sweep-job resource accounting is staged per job and
 * merged in submission order at the sweep barrier, so the prof
 * report's job list is deterministic in content and order (only the
 * measured numbers vary run to run).
 */

#ifndef ASH_PROF_PROF_H
#define ASH_PROF_PROF_H

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "prof/HwCounters.h"

/** Compile-time master switch; see file header. */
#ifndef ASH_PROF
#define ASH_PROF 1
#endif

namespace ash::prof {

/** Aggregated cost of one zone path ("frontend/parse", ...). */
struct ZoneStat
{
    uint64_t count = 0;         ///< Times the zone was entered.
    uint64_t wallNs = 0;        ///< Inclusive wall time.
    uint64_t cpuNs = 0;         ///< Inclusive thread-CPU time.
    uint64_t childWallNs = 0;   ///< Wall time inside direct children.

    /** Inclusive hw-counter deltas; meaningful when hwSamples > 0. */
    HwCounters::Values hw;
    uint64_t hwSamples = 0;     ///< Entries that captured hw deltas.

    /** Wall time not attributed to any child zone. */
    uint64_t
    selfWallNs() const
    {
        return wallNs > childWallNs ? wallNs - childWallNs : 0;
    }
};

/**
 * Resource bill of one sweep job: what SweepRunner measured around
 * the job body across all its attempts. Staged on the JobContext and
 * merged into the Profiler in submission order at the sweep barrier.
 */
struct JobCost
{
    std::string job;         ///< Job key ("fig11/gcd/t16").
    double wallSec = 0.0;    ///< Wall time across all attempts.
    double cpuSec = 0.0;     ///< Thread-CPU time across all attempts.
    /** Growth of the process peak RSS observed across the job's
     *  attempts, KiB. Process-wide high-water mark, so concurrent
     *  jobs' allocations can land in whichever job was running when
     *  the peak moved — indicative, not an exact per-job number. */
    long rssDeltaKb = 0;
    int attempts = 0;        ///< Attempts consumed.
    /** Outcome per attempt: "ok", "error", "timeout", "oom",
     *  "crash"; final entry is the job's fate. */
    std::vector<std::string> attemptOutcomes;
    bool failed = false;     ///< True when the job exhausted retries.
    bool replayed = false;   ///< True when resume skipped the body.

    /** Lane batching (SweepRunner::addBatch): the batch this job ran
     *  in as one lane, or empty for a solo job. Shared attempt costs
     *  are split evenly across the lanes active in each attempt. */
    std::string batch;
    int lane = -1;           ///< Lane slot within the batch.
    int laneWidth = 0;       ///< Full batch width W.
};

/** Aggregated lane occupancy of one batch across its attempts. */
struct BatchOccupancy
{
    uint64_t attempts = 0;     ///< Batched attempts executed.
    uint64_t activeLanes = 0;  ///< Sum of active lanes over attempts.
    uint64_t width = 0;        ///< Batch width W.

    /** Mean fraction of lanes doing useful work per attempt. */
    double
    occupancy() const
    {
        return attempts == 0 || width == 0
                   ? 0.0
                   : static_cast<double>(activeLanes) /
                         static_cast<double>(attempts * width);
    }
};

/**
 * The process-wide host profiler. Disarmed by default; the bench
 * harness arms it when any of --prof-json, --prof-jsonl, or
 * --progress is given (tests arm it directly). See file header for
 * the determinism contract.
 */
class Profiler
{
  public:
    static Profiler &instance();

    /** Hot-path guard; inline, one relaxed load, no call. */
    static bool
    enabled()
    {
        return _sEnabled.load(std::memory_order_relaxed);
    }

    /** Output sinks; set before arm(). Empty path = sink off. */
    void setJsonPath(std::string path);
    void setJsonlPath(std::string path);
    /** Progress heartbeat period to stderr; 0 disables. */
    void setProgressPeriodSec(double sec);
    /** JSONL sampling period; default 500 ms. */
    void setSamplePeriodMs(uint64_t ms);
    /** Collect per-zone hw counters (default on; tests force off). */
    void setHwCountersEnabled(bool on);

    /**
     * Start profiling: reset aggregates, stamp the epoch, start the
     * monitor thread when a JSONL sink or progress heartbeat is
     * configured, and flip enabled(). Idempotent while armed.
     */
    void arm();

    /** Stop recording and the monitor thread; keeps aggregates. */
    void disarm();

    /** Zone mechanics used by ScopedZone/PhaseTimer. */
    void zoneEnter(const char *name);
    void zoneExit();

    /** Sweep progress accounting (SweepRunner drives these). */
    void progressBegin(size_t totalJobs);
    void progressJobDone();
    void progressEnd();

    /** Merge one job's resource bill (sweep barrier, submission
     *  order). */
    void addJobCost(const JobCost &cost);

    /** Record one batched attempt: @p activeLanes of @p width lanes
     *  ran (SweepRunner::executeBatch drives this per attempt). */
    void addBatchOccupancy(const std::string &batch,
                           size_t activeLanes, size_t width);

    /** Per-batch lane-occupancy aggregates, keyed by batch name. */
    std::map<std::string, BatchOccupancy> batchOccupancy() const;

    /** Snapshot of the aggregated zone tree, keyed by path. */
    std::map<std::string, ZoneStat> zones() const;

    /** Job bills merged so far, in submission order. */
    std::vector<JobCost> jobCosts() const;

    /** True when at least one thread opened hw counters. */
    bool hwAvailable() const;
    /** First reason a thread failed to open them, or empty. */
    std::string hwError() const;

    /** The whole report as one JSON document. */
    std::string toJson(bool pretty = true) const;

    /**
     * Append one JSONL sample line (elapsed wall, process CPU,
     * current/peak RSS, jobs done/total, zone count) to @p out.
     * The monitor thread calls this on its period; tests call it
     * directly.
     */
    void sampleNow(std::ostream &out);

    /**
     * Disarm, write the JSON report if requested, and print the
     * slowest-jobs table to stderr when job bills were collected.
     * Returns 0 on success (including "nothing requested"), 1 on
     * I/O failure. Never touches stdout.
     */
    int finish();

    /** Drop all aggregates and sinks (for tests). */
    void clear();

  private:
    Profiler() = default;

    void monitorLoop();
    void printProgress();
    void printSlowestJobs() const;

    mutable std::mutex _mutex;   ///< Guards zones, jobs, hw status.
    std::map<std::string, ZoneStat> _zones;
    std::vector<JobCost> _jobs;
    std::map<std::string, BatchOccupancy> _batches;
    std::string _jsonPath;
    std::string _jsonlPath;
    double _progressPeriodSec = 0.0;
    uint64_t _samplePeriodMs = 500;
    bool _hwWanted = true;
    bool _hwSeen = false;          ///< Some thread opened counters.
    std::string _hwError;
    uint64_t _epochNs = 0;         ///< arm() wall epoch (steady).

    /** Monitor thread plumbing (jsonl sampler + progress heartbeat). */
    std::atomic<bool> _monitorStop{false};
    void *_monitorThread = nullptr;   ///< std::thread*, type-erased to
                                      ///< keep <thread> out of hot
                                      ///< includes.

    /** Progress counters; relaxed — heartbeat only reads trends. */
    std::atomic<uint64_t> _jobsTotal{0};
    std::atomic<uint64_t> _jobsDone{0};
    std::atomic<bool> _sweepActive{false};
    std::atomic<uint64_t> _sweepStartNs{0};

    static inline std::atomic<bool> _sEnabled{false};
};

/**
 * RAII phase zone. When the profiler is disarmed, construction is one
 * relaxed load. @p name must outlive the constructor call only (it is
 * copied into the thread's path on entry); it must not contain '/',
 * which joins path segments.
 */
class ScopedZone
{
  public:
    explicit ScopedZone(const char *name)
    {
#if ASH_PROF
        if (Profiler::enabled()) {
            _armed = true;
            Profiler::instance().zoneEnter(name);
        }
#else
        (void)name;
#endif
    }

    ~ScopedZone()
    {
#if ASH_PROF
        if (_armed)
            Profiler::instance().zoneExit();
#endif
    }

    ScopedZone(const ScopedZone &) = delete;
    ScopedZone &operator=(const ScopedZone &) = delete;

  private:
#if ASH_PROF
    bool _armed = false;
#endif
};

/**
 * Manual begin/end timer for phases that don't fit one lexical scope
 * (e.g. a bench timing region assembled across calls). begin() while
 * already begun is ignored; end() without begin() is a no-op. Arm
 * state is captured at begin(), so a finish() between begin and end
 * still balances the thread's zone stack.
 */
class PhaseTimer
{
  public:
    void
    begin(const char *name)
    {
#if ASH_PROF
        if (_armed || !Profiler::enabled())
            return;
        _armed = true;
        Profiler::instance().zoneEnter(name);
#else
        (void)name;
#endif
    }

    void
    end()
    {
#if ASH_PROF
        if (!_armed)
            return;
        _armed = false;
        Profiler::instance().zoneExit();
#endif
    }

    ~PhaseTimer() { end(); }

  private:
#if ASH_PROF
    bool _armed = false;
#endif
};

} // namespace ash::prof

/**
 * Phase instrumentation point: opens a zone for the rest of the
 * enclosing scope. Compiles to nothing at -DASH_PROF=0; costs one
 * relaxed load when disarmed.
 */
#if ASH_PROF
#define ASH_PROF_CONCAT2(a, b) a##b
#define ASH_PROF_CONCAT(a, b) ASH_PROF_CONCAT2(a, b)
#define ASH_PROF_ZONE(name)                                            \
    ::ash::prof::ScopedZone ASH_PROF_CONCAT(ashProfZone_,              \
                                            __LINE__)(name)
#else
#define ASH_PROF_ZONE(name) ((void)0)
#endif

#endif // ASH_PROF_PROF_H
