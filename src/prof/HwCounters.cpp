#include "prof/HwCounters.h"

#include <cerrno>
#include <cstring>

#ifdef __linux__
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace ash::prof {

#ifdef __linux__

namespace {

/** The four group members, in read order (leader first). */
constexpr uint64_t kConfigs[] = {
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};
constexpr int kNumCounters = 4;

int
openCounter(uint64_t config, int group_fd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = config;
    // Count from open; zone deltas only ever subtract snapshots, so
    // an enable/disable dance buys nothing.
    attr.disabled = 0;
    // User-space only: works under perf_event_paranoid <= 2, which is
    // the common unprivileged ceiling, and is what we want anyway —
    // the simulator burns its time in user space.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    return static_cast<int>(syscall(SYS_perf_event_open, &attr,
                                    /*pid=*/0, /*cpu=*/-1, group_fd,
                                    /*flags=*/0UL));
}

const char *
openErrorName(int err)
{
    switch (err) {
      case EACCES:
      case EPERM:
        return "perf_event_open denied "
               "(perf_event_paranoid too high?)";
      case ENOENT:
      case ENODEV:
      case EOPNOTSUPP:
        return "hardware counters not supported on this host";
      case EMFILE:
      case ENFILE:
        return "out of file descriptors for perf events";
      default:
        return "perf_event_open failed";
    }
}

} // namespace

HwCounters::HwCounters()
{
    int fds[kNumCounters] = {-1, -1, -1, -1};
    for (int i = 0; i < kNumCounters; ++i) {
        fds[i] = openCounter(kConfigs[i], i == 0 ? -1 : fds[0]);
        if (fds[i] < 0) {
            // All or nothing: a partial group would silently bias
            // per-phase ratios (e.g. IPC), so close what opened and
            // report unavailable.
            _error = openErrorName(errno);
            for (int j = 0; j < i; ++j)
                close(fds[j]);
            return;
        }
    }
    for (int i = 0; i < kNumCounters; ++i)
        _fds[i] = fds[i];
}

HwCounters::~HwCounters()
{
    // Siblings first; an event is destroyed when its fd closes.
    for (int i = kNumCounters - 1; i >= 0; --i)
        if (_fds[i] >= 0)
            close(_fds[i]);
}

bool
HwCounters::read(Values &out) const
{
    out = Values{};
    if (_fds[0] < 0)
        return false;
    struct
    {
        uint64_t nr;
        uint64_t values[kNumCounters];
    } buf;
    ssize_t n = ::read(_fds[0], &buf, sizeof(buf));
    if (n != static_cast<ssize_t>(sizeof(buf)) ||
        buf.nr != kNumCounters)
        return false;
    out.instructions = buf.values[0];
    out.cycles = buf.values[1];
    out.cacheMisses = buf.values[2];
    out.branchMisses = buf.values[3];
    return true;
}

#else // !__linux__

HwCounters::HwCounters()
{
    _error = "perf_event_open unavailable on this platform";
}

HwCounters::~HwCounters() = default;

bool
HwCounters::read(Values &out) const
{
    out = Values{};
    return false;
}

#endif

} // namespace ash::prof
