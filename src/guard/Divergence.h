/**
 * @file
 * Divergence guard: periodic cross-check of a fast engine (AshSim)
 * against the golden reference simulator, with a quarantine bundle on
 * mismatch.
 *
 * The guard is a ckpt::CycleHook, so it rides the same quiescent-
 * point callback as the CheckpointManager (compose both with
 * HookChain). Every `everyCycles` committed cycles it steps a private
 * ReferenceSimulator — driven by its own instance of the same
 * deterministic stimulus — up to the checked cycle and compares the
 * golden output frame against the guarded engine's committed frame.
 * Output-frame comparison is the cross-engine equivalence oracle this
 * codebase already uses everywhere (the same stimulus contract that
 * powers the equivalence tests); both engines' full stateHash()es are
 * additionally recorded in the bundle report for forensic diffing.
 *
 * On mismatch the guard writes a quarantine bundle
 *
 *   <quarantineDir>/<sanitized key>-c<cycle>/
 *     report.json         what diverged: cycle, per-output expected/
 *                         actual values, both engines' stateHash()
 *     ash-state.ashckpt   guarded engine's full snapshot at the
 *                         divergent quiescent point
 *     golden-state.ashckpt  reference simulator's snapshot
 *     trace.json          obs trace ring (Chrome format), when
 *                         tracing is enabled
 *
 * and throws DivergenceError, failing that job (not the process).
 */

#ifndef ASH_GUARD_DIVERGENCE_H
#define ASH_GUARD_DIVERGENCE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/Checkpoint.h"
#include "common/Error.h"
#include "refsim/ReferenceSimulator.h"
#include "refsim/Stimulus.h"

namespace ash::guard {

/** Thrown when the guarded engine disagrees with the reference. */
class DivergenceError : public Error
{
  public:
    explicit DivergenceError(const std::string &what)
        : Error("divergence", what)
    {
    }
};

/**
 * Fans one engine CycleHook slot out to several hooks, in order.
 * Lets a run use checkpointing and the divergence guard at once.
 */
class HookChain : public ckpt::CycleHook
{
  public:
    void add(ckpt::CycleHook *hook)
    {
        if (hook)
            _hooks.push_back(hook);
    }

    bool empty() const { return _hooks.empty(); }

    void
    onCycle(uint64_t cycle, ckpt::Snapshotter &sim) override
    {
        for (ckpt::CycleHook *hook : _hooks)
            hook->onCycle(cycle, sim);
    }

  private:
    std::vector<ckpt::CycleHook *> _hooks;
};

/** Periodic golden cross-check; see file header. */
class DivergenceGuard : public ckpt::CycleHook
{
  public:
    struct Options
    {
        uint64_t everyCycles = 0;    ///< Check period; 0 disables.
        std::string quarantineDir;   ///< Bundle root; "" = no bundle.
        std::string key;             ///< Job key for bundle naming.
    };

    /**
     * The guarded engine's committed outputs at an absolute cycle.
     * Must be callable for any cycle the hook has reported committed.
     */
    using FrameFn = std::function<refsim::OutputFrame(uint64_t cycle)>;

    /**
     * @p netlist/@p stimulus rebuild the golden model; @p frame reads
     * the guarded engine's committed outputs. The stimulus must be a
     * fresh deterministic instance — the guard steps it from cycle 0.
     */
    DivergenceGuard(const rtl::Netlist &netlist,
                    refsim::StimulusPtr stimulus, FrameFn frame,
                    Options opts);

    /** Checks run so far (testing/diagnostics). */
    uint64_t checksDone() const { return _checks; }

    void onCycle(uint64_t cycle, ckpt::Snapshotter &sim) override;

  private:
    std::string writeBundle(uint64_t cycle, ckpt::Snapshotter &sim,
                            const refsim::OutputFrame &expect,
                            const refsim::OutputFrame &actual);

    const rtl::Netlist &_nl;
    refsim::StimulusPtr _stimulus;
    FrameFn _frame;
    Options _opts;
    refsim::ReferenceSimulator _golden;
    uint64_t _lastBucket = 0;
    uint64_t _checks = 0;
};

} // namespace ash::guard

#endif // ASH_GUARD_DIVERGENCE_H
