/**
 * @file
 * Wall-clock watchdog backing per-job deadlines (--job-deadline).
 *
 * One background thread serves any number of armed entries. Arming
 * associates a CancelToken with an absolute deadline; if the entry is
 * not disarmed in time, the watchdog cancels the token with a
 * descriptive reason and the victim thread unwinds at its next
 * pollCancel() — cooperative, so destructors run and the job is
 * reported as a structured timeout rather than being torn down
 * mid-write. (The non-cooperative big hammer is --isolate, where the
 * sweep runner SIGKILLs the forked child instead.)
 *
 * The service thread sleeps on a condition variable until the nearest
 * deadline (or a state change), so an idle watchdog costs nothing and
 * expiry latency is bounded by wakeup jitter only — well under the
 * "reported within 2x the deadline" acceptance bound.
 */

#ifndef ASH_GUARD_WATCHDOG_H
#define ASH_GUARD_WATCHDOG_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "guard/Cancel.h"

namespace ash::guard {

/** Deadline service; see file header. */
class Watchdog
{
  public:
    Watchdog();
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Watch @p token: unless disarm()ed within @p deadline, cancel it
     * with a reason naming @p what and the budget. Returns a handle
     * for disarm(). @p token must outlive the armed window.
     */
    uint64_t arm(CancelToken *token,
                 std::chrono::milliseconds deadline,
                 const std::string &what);

    /**
     * Stop watching @p id (e.g. the job finished in time). Idempotent;
     * returns false if the entry already fired or never existed.
     */
    bool disarm(uint64_t id);

    /** Deadlines fired over this watchdog's lifetime. */
    uint64_t firedCount() const;

  private:
    void serviceLoop();

    struct Entry
    {
        CancelToken *token;
        std::chrono::steady_clock::time_point deadline;
        std::string what;
        std::chrono::milliseconds budget;
    };

    mutable std::mutex _mutex;
    std::condition_variable _cv;
    std::map<uint64_t, Entry> _entries;
    uint64_t _nextId = 1;
    uint64_t _fired = 0;
    bool _shutdown = false;
    std::thread _thread;
};

/** RAII arm/disarm around one guarded scope (a job attempt). */
class WatchdogScope
{
  public:
    WatchdogScope(Watchdog &dog, CancelToken *token,
                  std::chrono::milliseconds deadline,
                  const std::string &what)
        : _dog(dog), _id(dog.arm(token, deadline, what))
    {
    }
    ~WatchdogScope() { _dog.disarm(_id); }
    WatchdogScope(const WatchdogScope &) = delete;
    WatchdogScope &operator=(const WatchdogScope &) = delete;

  private:
    Watchdog &_dog;
    uint64_t _id;
};

} // namespace ash::guard

#endif // ASH_GUARD_WATCHDOG_H
