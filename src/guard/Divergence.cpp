#include "guard/Divergence.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/Logging.h"
#include "obs/Report.h"
#include "obs/Trace.h"
#include "rtl/Netlist.h"

namespace fs = std::filesystem;

namespace ash::guard {

DivergenceGuard::DivergenceGuard(const rtl::Netlist &netlist,
                                 refsim::StimulusPtr stimulus,
                                 FrameFn frame, Options opts)
    : _nl(netlist), _stimulus(std::move(stimulus)),
      _frame(std::move(frame)), _opts(std::move(opts)),
      _golden(netlist)
{
}

void
DivergenceGuard::onCycle(uint64_t cycle, ckpt::Snapshotter &sim)
{
    if (_opts.everyCycles == 0 || cycle == 0)
        return;
    // Same bucket discipline as CheckpointManager: engines fire the
    // hook at their own quiescent cadence (AshSim batches by GVT), so
    // "every N" means "once per N-cycle window actually crossed".
    uint64_t bucket = cycle / _opts.everyCycles;
    if (bucket <= _lastBucket)
        return;
    _lastBucket = bucket;

    // The hook reports `cycle` design cycles fully committed; the
    // newest committed frame is for cycle index cycle-1. The golden
    // model replays its own copy of the deterministic stimulus, so
    // after `cycle` steps its outputFrame() is that same frame.
    while (_golden.cycle() < cycle)
        _golden.step(*_stimulus);
    ++_checks;

    refsim::OutputFrame expect = _golden.outputFrame();
    refsim::OutputFrame actual = _frame(cycle - 1);
    if (expect == actual)
        return;

    std::string where =
        writeBundle(cycle, sim, expect, actual);
    std::ostringstream msg;
    msg << "divergence from reference at cycle " << (cycle - 1)
        << " (" << sim.engineName() << " vs refsim";
    for (size_t i = 0; i < expect.size() && i < actual.size(); ++i) {
        if (expect[i] != actual[i]) {
            msg << "; first mismatch output '"
                << _nl.outputName(_nl.outputs()[i]) << "' expected 0x"
                << std::hex << expect[i] << " got 0x" << actual[i]
                << std::dec;
            break;
        }
    }
    msg << ")";
    if (!where.empty())
        msg << "; quarantine bundle: " << where;
    throw DivergenceError(msg.str());
}

std::string
DivergenceGuard::writeBundle(uint64_t cycle, ckpt::Snapshotter &sim,
                             const refsim::OutputFrame &expect,
                             const refsim::OutputFrame &actual)
{
    if (_opts.quarantineDir.empty())
        return "";

    std::string dir =
        _opts.quarantineDir + "/" +
        ckpt::CheckpointManager::sanitizeKey(
            _opts.key.empty() ? "run" : _opts.key) +
        "-c" + std::to_string(cycle);
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("divergence: cannot create quarantine dir '%s': %s",
             dir.c_str(), ec.message().c_str());
        return "";
    }

    // Best-effort from here: the bundle must never mask the
    // DivergenceError with a secondary I/O failure.
    try {
        ckpt::CheckpointManager::writeImage(dir + "/ash-state.ashckpt",
                                            sim);
        ckpt::CheckpointManager::writeImage(
            dir + "/golden-state.ashckpt", _golden);
    } catch (const Error &e) {
        warn("divergence: bundle snapshot write failed: %s", e.what());
    }

    if (obs::Tracer::enabled())
        obs::Tracer::global().exportChromeJson(dir + "/trace.json");

    {
        std::ofstream out(dir + "/stats.json",
                          std::ios::binary | std::ios::trunc);
        out << obs::Report::global().toJson(true) << "\n";
    }

    std::ofstream out(dir + "/report.json",
                      std::ios::binary | std::ios::trunc);
    out << "{\n";
    out << "  \"key\": \"" << _opts.key << "\",\n";
    out << "  \"engine\": \"" << sim.engineName() << "\",\n";
    out << "  \"committedCycles\": " << cycle << ",\n";
    out << "  \"divergentCycle\": " << (cycle - 1) << ",\n";
    out << "  \"engineStateHash\": \"" << std::hex << sim.stateHash()
        << std::dec << "\",\n";
    out << "  \"goldenStateHash\": \"" << std::hex
        << _golden.stateHash() << std::dec << "\",\n";
    out << "  \"outputs\": [";
    bool first = true;
    for (size_t i = 0; i < expect.size() && i < actual.size(); ++i) {
        if (expect[i] == actual[i])
            continue;
        out << (first ? "" : ",") << "\n    {\"name\": \""
            << _nl.outputName(_nl.outputs()[i]) << "\", \"expect\": "
            << expect[i] << ", \"actual\": " << actual[i] << "}";
        first = false;
    }
    out << "\n  ]\n}\n";
    return dir;
}

} // namespace ash::guard
