/**
 * @file
 * Cooperative cancellation for long-running simulator loops.
 *
 * A CancelToken is a one-shot, thread-safe "stop now" flag with a
 * reason string. The sweep runner installs one per job attempt as the
 * worker thread's *current* token; the engine run loops (AshSim,
 * baseline, refsim) call pollCancel() at a coarse cadence, which
 * throws CancelledError the moment anything — typically the Watchdog
 * when a per-job deadline expires — cancels the token. Cancellation
 * therefore unwinds through ordinary exception propagation: the
 * engine's destructors run, the job is reported as a structured
 * timeout JobFailure, and the sweep keeps going.
 *
 * Header-only by design: pollCancel() must be callable from every
 * engine library without adding a link edge to ash_guard. The cost
 * when no token is installed is one thread_local load and a
 * predictable branch, so per-cycle polling in baseline/refsim and
 * every-4096-events polling in AshSim are both free in practice.
 */

#ifndef ASH_GUARD_CANCEL_H
#define ASH_GUARD_CANCEL_H

#include <atomic>
#include <mutex>
#include <string>

#include "common/Error.h"

namespace ash::guard {

/** Thrown by poll()/pollCancel() once the current token is cancelled. */
class CancelledError : public Error
{
  public:
    explicit CancelledError(const std::string &reason)
        : Error("cancel", "cancelled: " + reason)
    {
    }
};

/** One-shot cancellation flag; see file header. */
class CancelToken
{
  public:
    /**
     * Request cancellation with @p reason. First caller wins the
     * reason; the flag itself is sticky. Safe from any thread —
     * this is exactly what the Watchdog thread calls on expiry.
     */
    void
    cancel(const std::string &reason)
    {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            if (_reason.empty())
                _reason = reason.empty() ? "cancelled" : reason;
        }
        // Release pairs with the acquire in cancelled(): a poller
        // that sees the flag also sees the reason.
        _cancelled.store(true, std::memory_order_release);
    }

    bool
    cancelled() const
    {
        return _cancelled.load(std::memory_order_acquire);
    }

    std::string
    reason() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        return _reason;
    }

    /** Throw CancelledError iff cancelled; otherwise a no-op. */
    void
    poll() const
    {
        if (cancelled())
            throw CancelledError(reason());
    }

    /** The token installed on this thread, or nullptr. */
    static CancelToken *
    current()
    {
        return _tCurrent;
    }

    /** Install @p token (nullptr to clear) as this thread's token. */
    static void
    setCurrent(CancelToken *token)
    {
        _tCurrent = token;
    }

  private:
    std::atomic<bool> _cancelled{false};
    mutable std::mutex _mutex;
    std::string _reason;

    static inline thread_local CancelToken *_tCurrent = nullptr;
};

/** RAII installer for a thread's current CancelToken. */
class CancelScope
{
  public:
    explicit CancelScope(CancelToken *token)
        : _prev(CancelToken::current())
    {
        CancelToken::setCurrent(token);
    }
    ~CancelScope() { CancelToken::setCurrent(_prev); }
    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    CancelToken *_prev;
};

/**
 * Cancellation poll for engine run loops: throws CancelledError when
 * this thread's current token (if any) has been cancelled. One TLS
 * load + branch when idle — cheap enough to call every cycle.
 */
inline void
pollCancel()
{
    if (CancelToken *token = CancelToken::current())
        token->poll();
}

} // namespace ash::guard

#endif // ASH_GUARD_CANCEL_H
