/**
 * @file
 * Subprocess isolation for --isolate sweeps: run one job attempt in a
 * forked child under resource limits so a crash, runaway allocation,
 * or hard hang kills *that child* and the parent reports a structured
 * JobFailure instead of dying with it.
 *
 * These are deliberately thin POSIX helpers — fork with rlimits,
 * non-blocking reap, SIGKILL — and policy stays in exec::SweepRunner:
 * the runner decides what the child runs, how results travel back
 * (tmp+rename file in Snapshot format), when a deadline has passed,
 * and how a raw ChildStatus maps onto a FailureKind (it knows whether
 * the SIGKILL was its own deadline kill or a genuine crash).
 *
 * Forking from a multithreaded process is a minefield (the child
 * inherits only the calling thread, but every mutex — malloc's
 * included — in whatever state other threads left it), so the sweep
 * runner never mixes --isolate with its in-process ThreadPool: in
 * isolate mode the single main thread forks all children, and
 * parallelism comes from the children running concurrently.
 */

#ifndef ASH_GUARD_ISOLATE_H
#define ASH_GUARD_ISOLATE_H

#include <cstdint>
#include <functional>
#include <string>
#include <sys/types.h>

namespace ash::guard {

/** Child resource limits; 0 means unlimited. */
struct IsolateLimits
{
    uint64_t cpuSeconds = 0; ///< RLIMIT_CPU (hard hang backstop).
    uint64_t memMb = 0;      ///< RLIMIT_AS, MiB (allocation runaway).
};

/** Raw child exit report from pollChild(). */
struct ChildStatus
{
    bool exited = false;     ///< Normal exit (vs. signal).
    int exitCode = 0;        ///< Valid when exited.
    int termSignal = 0;      ///< Valid when !exited.
};

/**
 * Fork a child that applies @p limits (plus RLIMIT_CORE=0 — injected
 * crashes must not litter core files) and runs @p body; the child
 * exits with body's return value, or 124 if body leaks an exception.
 * Returns the child pid. Throws ash::Error("isolate") if fork fails.
 *
 * Call only from a context with no other live threads of our own
 * (see file header).
 */
pid_t spawnIsolated(const IsolateLimits &limits,
                    const std::function<int()> &body);

/**
 * Non-blocking reap of @p pid. True (and @p out filled) once the
 * child is done; false while it is still running.
 */
bool pollChild(pid_t pid, ChildStatus &out);

/** SIGKILL @p pid (deadline enforcement); idempotent. */
void killChild(pid_t pid);

/** Human-readable exit summary ("exit code 3", "signal 11 (SIGSEGV)"). */
std::string describeChildExit(const ChildStatus &status);

} // namespace ash::guard

#endif // ASH_GUARD_ISOLATE_H
