#include "guard/Watchdog.h"

#include "common/Logging.h"

namespace ash::guard {

Watchdog::Watchdog() : _thread([this] { serviceLoop(); }) {}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _cv.notify_all();
    _thread.join();
}

uint64_t
Watchdog::arm(CancelToken *token, std::chrono::milliseconds deadline,
              const std::string &what)
{
    std::lock_guard<std::mutex> lock(_mutex);
    uint64_t id = _nextId++;
    _entries.emplace(
        id, Entry{token, std::chrono::steady_clock::now() + deadline,
                  what, deadline});
    _cv.notify_all();
    return id;
}

bool
Watchdog::disarm(uint64_t id)
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _entries.erase(id) != 0;
}

uint64_t
Watchdog::firedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _fired;
}

void
Watchdog::serviceLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    while (!_shutdown) {
        auto now = std::chrono::steady_clock::now();
        auto nearest = std::chrono::steady_clock::time_point::max();

        for (auto it = _entries.begin(); it != _entries.end();) {
            if (it->second.deadline <= now) {
                Entry entry = std::move(it->second);
                it = _entries.erase(it);
                ++_fired;
                // Cancel outside the lock: the token's own mutex is
                // independent, but a poller's reason() read should
                // never contend with our bookkeeping.
                lock.unlock();
                warn("watchdog: deadline of %lld ms exceeded for %s;"
                     " cancelling",
                     static_cast<long long>(entry.budget.count()),
                     entry.what.c_str());
                entry.token->cancel(
                    "deadline of " +
                    std::to_string(entry.budget.count()) +
                    " ms exceeded for " + entry.what);
                lock.lock();
                // _entries may have changed; restart the sweep.
                it = _entries.begin();
                now = std::chrono::steady_clock::now();
                nearest = std::chrono::steady_clock::time_point::max();
                continue;
            }
            nearest = std::min(nearest, it->second.deadline);
            ++it;
        }

        if (_shutdown)
            break;
        if (nearest == std::chrono::steady_clock::time_point::max())
            _cv.wait(lock);
        else
            _cv.wait_until(lock, nearest);
    }
}

} // namespace ash::guard

