/**
 * @file
 * ash_guard deterministic fault injection. A FaultPlan is a seeded
 * list of rules binding named *injection sites* (cold-path hooks
 * compiled into the stack: checkpoint writes/renames, manifest reads,
 * snapshot bytes, sweep job bodies, result persistence) to fault
 * kinds. Arming the process-wide FaultInjector with a plan makes
 * those sites misbehave reproducibly; the chaos tests then assert
 * that the rest of the stack degrades gracefully.
 *
 * Plan spec (the --fault-plan flag / ASH_FAULT environment variable);
 * rules are ';'-separated, parameters ':'-separated:
 *
 *   [seed=N;]site[@match]:kind[:param=value]...
 *
 *   site   injection-site name; trailing '*' matches any suffix
 *          (sites in the tree: job.body, job.alloc, lanes.batch,
 *           exec.persist.write, ckpt.image.write, ckpt.image.rename,
 *           ckpt.image.bytes, ckpt.manifest.write,
 *           ckpt.manifest.read, serve.results.write,
 *           jit.source.write, jit.compile, jit.cache.bytes,
 *           jit.dlopen, pool.worker.spawn, pool.worker.kill,
 *           pool.ipc.corrupt)
 *   match  substring of the fault scope (the sweep job key; empty
 *          scope outside jobs); omitted = every scope
 *   kind   error   throw guard::InjectedFault (structured I/O-style
 *                  failure; derives ash::Error)
 *          alloc   throw std::bad_alloc (allocation pressure)
 *          hang    busy-wait ms= milliseconds, polling the thread's
 *                  CancelToken so watchdogs can reap it
 *          kill    _exit(42) — the portable SIGKILL stand-in
 *          corrupt flip bytes= bytes of the buffer passed to
 *                  ASH_FAULT_CORRUPT sites (CRC-detectable damage)
 *   params prob=P   fire with probability P (deterministic, hashed)
 *          after=N  skip the first N hits of (site, scope)
 *          every=N  then fire every Nth hit only
 *          count=N  stop after N fires of (site, scope)
 *          ms=N     hang duration (default 1000)
 *          bytes=N  corruption width (default 8)
 *
 * DETERMINISM — the contract that lets chaos runs diff against
 * fault-free runs byte-for-byte: a fire decision is a pure function
 * of (plan seed, site, scope, per-(site,scope) hit index). The scope
 * is the sweep job key, so decisions never depend on thread count,
 * scheduling, or wall-clock time; healthy jobs see exactly the same
 * world at any --jobs count.
 *
 * COMPILE-OUT — mirrors ASH_OBS_TRACE: building with
 * -DASH_GUARD_FAULTS_ENABLED=OFF turns every ASH_FAULT_POINT() into
 * ((void)0). Compiled in but disarmed (the default), a site costs one
 * inline relaxed atomic load and a predictable branch; sites live
 * only on cold I/O and job-boundary paths, never in engine hot loops.
 *
 * Header-only on purpose: sites exist in layers below ash_guard
 * (ckpt, exec), and an inline singleton keeps them free of library
 * dependency edges.
 */

#ifndef ASH_GUARD_FAULT_H
#define ASH_GUARD_FAULT_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

#include "common/Error.h"
#include "common/Logging.h"
#include "guard/Cancel.h"

/** Compile-time master switch; see file header. */
#ifndef ASH_GUARD_FAULTS
#define ASH_GUARD_FAULTS 1
#endif

namespace ash::guard {

/** Thrown by 'error'-kind injections; a stand-in for real I/O loss. */
class InjectedFault : public Error
{
  public:
    explicit InjectedFault(const std::string &what)
        : Error("fault", what)
    {
    }
};

/**
 * Fault *scope* provider. The scope names the unit of work a fault
 * decision is attributed to — the running sweep job's key — which is
 * what makes decisions independent of thread count and scheduling.
 * exec::SweepRunner registers a provider at startup; outside any job
 * (or with no provider registered) the scope is "".
 *
 * An inline atomic slot rather than a direct call into ash_exec keeps
 * this header free of library dependency edges in both directions.
 */
using FaultScopeProvider = std::string (*)();

inline std::atomic<FaultScopeProvider> &
faultScopeProviderSlot()
{
    static std::atomic<FaultScopeProvider> slot{nullptr};
    return slot;
}

/** Register @p fn as the process-wide scope provider (nullptr clears). */
inline void
setFaultScopeProvider(FaultScopeProvider fn)
{
    faultScopeProviderSlot().store(fn, std::memory_order_release);
}

/** The current fault scope; "" outside any registered unit of work. */
inline std::string
currentFaultScope()
{
    FaultScopeProvider fn =
        faultScopeProviderSlot().load(std::memory_order_acquire);
    return fn ? fn() : std::string();
}

/** What a matched rule does at its site. */
enum class FaultKind : uint8_t { Error, Alloc, Hang, Kill, Corrupt };

/** One parsed plan rule; see the file-header spec. */
struct FaultRule
{
    std::string site;        ///< Site name; trailing '*' = prefix.
    std::string match;       ///< Scope substring; empty = all scopes.
    FaultKind kind = FaultKind::Error;
    double prob = 1.0;
    uint64_t after = 0;
    uint64_t every = 0;      ///< 0 = every hit past `after`.
    uint64_t count = ~0ull;  ///< Max fires per (site, scope).
    uint64_t ms = 1000;      ///< Hang duration.
    uint64_t bytes = 8;      ///< Corruption width.
};

/** A seeded rule list; parse() accepts the spec format above. */
struct FaultPlan
{
    uint64_t seed = 1;
    std::vector<FaultRule> rules;

    /**
     * Parse @p spec; returns false and sets @p err on a malformed
     * spec (unknown kind/parameter, bad number). An empty spec is a
     * valid empty plan.
     */
    static bool parse(const std::string &spec, FaultPlan &out,
                      std::string *err = nullptr);
};

/**
 * Process-wide injection authority. arm() installs a plan and flips
 * the inline `armed()` flag the ASH_FAULT_POINT macro checks;
 * decision state (per-(site,scope) hit counters) lives behind a
 * mutex — fine, every site is cold by construction.
 */
class FaultInjector
{
  public:
    static FaultInjector &
    instance()
    {
        static FaultInjector inj;
        return inj;
    }

    /** Hot-path guard; inline, branch-predictable, no call. */
    static bool
    armed()
    {
        return _sArmed.load(std::memory_order_relaxed);
    }

    /** Install @p plan; empty rule lists leave the injector off. */
    void
    arm(FaultPlan plan)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _plan = std::move(plan);
        _hits.clear();
        _sArmed.store(!_plan.rules.empty(),
                      std::memory_order_relaxed);
    }

    /** Remove the plan; every site reverts to a no-op. */
    void
    disarm()
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _plan = FaultPlan{};
        _hits.clear();
        _sArmed.store(false, std::memory_order_relaxed);
    }

    /**
     * One ASH_FAULT_POINT hit: consult the plan and misbehave per the
     * matched rule (throw, hang, kill). Returns normally when no rule
     * fires. Scope is the running sweep job's key ("" outside jobs).
     */
    void
    fire(const char *site)
    {
        const FaultRule *rule = decide(site, nullptr);
        if (!rule)
            return;
        act(*rule, site);
    }

    /**
     * One ASH_FAULT_CORRUPT hit: when a 'corrupt' rule fires, flip
     * rule.bytes deterministically chosen bytes of @p data in place
     * and return true. Non-corrupt rules act as in fire().
     */
    bool
    corrupt(const char *site, void *data, size_t len)
    {
        uint64_t decisionHash = 0;
        const FaultRule *rule = decide(site, &decisionHash);
        if (!rule)
            return false;
        if (rule->kind != FaultKind::Corrupt) {
            act(*rule, site);
            return false;
        }
        if (len == 0)
            return false;
        auto *bytes = static_cast<unsigned char *>(data);
        uint64_t h = decisionHash;
        for (uint64_t i = 0; i < rule->bytes; ++i) {
            h = mix(h + i);
            bytes[h % len] ^= static_cast<unsigned char>(
                0x01u | (h >> 32));
        }
        warn("fault: corrupted %llu byte(s) at site '%s'",
             static_cast<unsigned long long>(rule->bytes), site);
        return true;
    }

    /** Fires so far, across all sites (diagnostics, tests). */
    uint64_t
    firedCount() const
    {
        std::lock_guard<std::mutex> lock(_mutex);
        uint64_t n = 0;
        for (const auto &[key, counters] : _hits)
            n += counters.second;
        return n;
    }

  private:
    FaultInjector() = default;

    static uint64_t
    mix(uint64_t z)
    {
        // splitmix64 finalizer: the decision hash.
        z += 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    static uint64_t
    hashStr(const std::string &s, uint64_t h)
    {
        for (char c : s)
            h = (h ^ static_cast<unsigned char>(c)) *
                1099511628211ull;
        return h;
    }

    static bool
    siteMatches(const std::string &pattern, const std::string &site)
    {
        if (!pattern.empty() && pattern.back() == '*')
            return site.compare(0, pattern.size() - 1, pattern, 0,
                                pattern.size() - 1) == 0;
        return pattern == site;
    }

    /**
     * Count the hit and return the rule to apply, or nullptr. The
     * decision hash (pure function of seed/site/scope/hit index) is
     * optionally exposed for corruption-offset derivation.
     */
    const FaultRule *
    decide(const char *siteCstr, uint64_t *decisionHashOut)
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (_plan.rules.empty())
            return nullptr;
        const std::string site(siteCstr);
        const std::string scope = currentFaultScope();

        for (const FaultRule &rule : _plan.rules) {
            if (!siteMatches(rule.site, site))
                continue;
            if (!rule.match.empty() &&
                scope.find(rule.match) == std::string::npos)
                continue;

            auto &[hits, fires] = _hits[site + '\0' + scope];
            uint64_t hit = hits++;
            if (hit < rule.after || fires >= rule.count)
                return nullptr;
            uint64_t idx = hit - rule.after;
            if (rule.every > 1 && idx % rule.every != 0)
                return nullptr;
            uint64_t h = mix(_plan.seed ^
                             hashStr(site, 14695981039346656037ull));
            h = mix(h ^ hashStr(scope, 14695981039346656037ull));
            h = mix(h ^ idx);
            if (rule.prob < 1.0 &&
                static_cast<double>(h >> 11) *
                        (1.0 / 9007199254740992.0) >=
                    rule.prob)
                return nullptr;
            ++fires;
            if (decisionHashOut)
                *decisionHashOut = h;
            return &rule;
        }
        // No rule names this site: count nothing, stay silent.
        return nullptr;
    }

    [[noreturn]] static void
    throwInjected(const char *site)
    {
        throw InjectedFault(std::string("injected fault at site '") +
                            site + "' (scope '" +
                            currentFaultScope() + "')");
    }

    void
    act(const FaultRule &rule, const char *site)
    {
        switch (rule.kind) {
          case FaultKind::Error:
            warn("fault: injecting error at site '%s'", site);
            throwInjected(site);
          case FaultKind::Alloc:
            warn("fault: injecting allocation failure at site '%s'",
                 site);
            throw std::bad_alloc();
          case FaultKind::Hang:
            warn("fault: hanging %llu ms at site '%s'",
                 static_cast<unsigned long long>(rule.ms), site);
            hangFor(rule.ms);
            return;
          case FaultKind::Kill:
            warn("fault: killing process at site '%s'", site);
            _exit(42);
          case FaultKind::Corrupt:
            // Corruption needs a buffer; a plain fire() site cannot
            // honor it. Loud, because the plan is likely wrong.
            warn("fault: 'corrupt' rule matched non-buffer site "
                 "'%s'; ignored", site);
            return;
        }
    }

    /** Cancellable spin-sleep so a watchdog can reap the "hang". */
    static void hangFor(uint64_t ms);

    mutable std::mutex _mutex;
    FaultPlan _plan;
    /** (site + NUL + scope) -> (hits, fires). */
    std::map<std::string, std::pair<uint64_t, uint64_t>> _hits;

    static inline std::atomic<bool> _sArmed{false};
};

inline void
FaultInjector::hangFor(uint64_t ms)
{
    using Clock = std::chrono::steady_clock;
    const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < deadline) {
        // Cancellable: a Watchdog that fires during the hang reaps
        // this thread through the normal CancelledError path.
        pollCancel();
        auto left = deadline - Clock::now();
        auto chunk = std::chrono::milliseconds(5);
        std::this_thread::sleep_for(left < chunk ? left : chunk);
    }
    pollCancel();
}

inline bool
FaultPlan::parse(const std::string &spec, FaultPlan &out,
                 std::string *err)
{
    auto fail = [&](const std::string &msg) {
        if (err)
            *err = "fault plan: " + msg;
        return false;
    };
    auto parseU64 = [](const std::string &s, uint64_t &v) {
        if (s.empty())
            return false;
        char *end = nullptr;
        v = std::strtoull(s.c_str(), &end, 10);
        return end && *end == '\0';
    };

    FaultPlan plan;
    size_t pos = 0;
    while (pos <= spec.size()) {
        size_t semi = spec.find(';', pos);
        std::string part = spec.substr(
            pos, semi == std::string::npos ? std::string::npos
                                          : semi - pos);
        pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
        if (part.empty())
            continue;

        if (part.compare(0, 5, "seed=") == 0) {
            if (!parseU64(part.substr(5), plan.seed))
                return fail("bad seed '" + part + "'");
            continue;
        }

        // site[@match]:kind[:key=value]...
        size_t colon = part.find(':');
        if (colon == std::string::npos)
            return fail("rule '" + part + "' missing ':kind'");
        FaultRule rule;
        rule.site = part.substr(0, colon);
        if (size_t at = rule.site.find('@');
            at != std::string::npos) {
            rule.match = rule.site.substr(at + 1);
            rule.site.resize(at);
        }
        if (rule.site.empty())
            return fail("rule '" + part + "' has an empty site");

        size_t fieldPos = colon + 1;
        bool haveKind = false;
        while (fieldPos <= part.size()) {
            size_t next = part.find(':', fieldPos);
            std::string field = part.substr(
                fieldPos, next == std::string::npos
                              ? std::string::npos
                              : next - fieldPos);
            fieldPos = next == std::string::npos ? part.size() + 1
                                                 : next + 1;
            if (field.empty())
                continue;
            size_t eq = field.find('=');
            if (eq == std::string::npos) {
                if (haveKind)
                    return fail("rule '" + part +
                                "' names two kinds");
                if (field == "error")
                    rule.kind = FaultKind::Error;
                else if (field == "alloc")
                    rule.kind = FaultKind::Alloc;
                else if (field == "hang")
                    rule.kind = FaultKind::Hang;
                else if (field == "kill")
                    rule.kind = FaultKind::Kill;
                else if (field == "corrupt")
                    rule.kind = FaultKind::Corrupt;
                else
                    return fail("unknown fault kind '" + field + "'");
                haveKind = true;
                continue;
            }
            std::string key = field.substr(0, eq);
            std::string val = field.substr(eq + 1);
            bool ok = true;
            if (key == "prob") {
                char *end = nullptr;
                rule.prob = std::strtod(val.c_str(), &end);
                ok = end && *end == '\0' && rule.prob >= 0.0 &&
                     rule.prob <= 1.0;
            } else if (key == "after") {
                ok = parseU64(val, rule.after);
            } else if (key == "every") {
                ok = parseU64(val, rule.every);
            } else if (key == "count") {
                ok = parseU64(val, rule.count);
            } else if (key == "ms") {
                ok = parseU64(val, rule.ms);
            } else if (key == "bytes") {
                ok = parseU64(val, rule.bytes) && rule.bytes > 0;
            } else {
                return fail("unknown parameter '" + key +
                            "' in rule '" + part + "'");
            }
            if (!ok)
                return fail("bad value '" + val + "' for '" + key +
                            "' in rule '" + part + "'");
        }
        if (!haveKind)
            return fail("rule '" + part + "' missing a fault kind");
        plan.rules.push_back(std::move(rule));
    }

    out = std::move(plan);
    return true;
}

} // namespace ash::guard

/**
 * Injection site. Compiles to nothing with
 * -DASH_GUARD_FAULTS_ENABLED=OFF; one inline flag check when armed
 * is possible but no plan is installed.
 */
#if ASH_GUARD_FAULTS
#define ASH_FAULT_POINT(site)                                          \
    do {                                                               \
        if (::ash::guard::FaultInjector::armed()) {                    \
            ::ash::guard::FaultInjector::instance().fire(site);        \
        }                                                              \
    } while (0)
/** Buffer-corruption site; evaluates to true when bytes were flipped. */
#define ASH_FAULT_CORRUPT(site, data, len)                             \
    (::ash::guard::FaultInjector::armed() &&                           \
     ::ash::guard::FaultInjector::instance().corrupt(site, data, len))
#else
#define ASH_FAULT_POINT(site) ((void)0)
#define ASH_FAULT_CORRUPT(site, data, len) (false)
#endif

#endif // ASH_GUARD_FAULT_H
