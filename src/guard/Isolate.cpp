#include "guard/Isolate.h"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/Error.h"
#include "common/Logging.h"

namespace ash::guard {

namespace {

void
applyLimit(int resource, uint64_t value, const char *what)
{
    struct rlimit lim;
    lim.rlim_cur = value;
    lim.rlim_max = value;
    if (setrlimit(resource, &lim) != 0) {
        // Child context: limits are best-effort hardening, not
        // correctness; warn and keep going.
        warn("isolate: setrlimit(%s, %llu) failed: %s", what,
             static_cast<unsigned long long>(value), strerror(errno));
    }
}

} // namespace

pid_t
spawnIsolated(const IsolateLimits &limits,
              const std::function<int()> &body)
{
    pid_t pid = fork();
    if (pid < 0)
        throw Error("isolate",
                    std::string("isolate: fork failed: ") +
                        strerror(errno));
    if (pid > 0)
        return pid;

    // --- child ---
    applyLimit(RLIMIT_CORE, 0, "RLIMIT_CORE");
    if (limits.cpuSeconds > 0)
        applyLimit(RLIMIT_CPU, limits.cpuSeconds, "RLIMIT_CPU");
    if (limits.memMb > 0)
        applyLimit(RLIMIT_AS, limits.memMb * 1024ull * 1024ull,
                   "RLIMIT_AS");

    int code = 124;
    try {
        code = body();
    } catch (...) {
        // body() is expected to catch its own failures and encode
        // them in its return value; 124 marks the escape hatch.
    }
    _exit(code);
}

bool
pollChild(pid_t pid, ChildStatus &out)
{
    int status = 0;
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == 0)
        return false;
    if (r < 0) {
        // ECHILD etc.: the child is gone but unobservable; report it
        // as an abnormal exit rather than spinning forever.
        out = ChildStatus{true, 127, 0};
        return true;
    }
    if (WIFEXITED(status))
        out = ChildStatus{true, WEXITSTATUS(status), 0};
    else if (WIFSIGNALED(status))
        out = ChildStatus{false, 0, WTERMSIG(status)};
    else
        out = ChildStatus{true, 127, 0};
    return true;
}

void
killChild(pid_t pid)
{
    if (pid > 0)
        kill(pid, SIGKILL);
}

std::string
describeChildExit(const ChildStatus &status)
{
    if (status.exited)
        return "exit code " + std::to_string(status.exitCode);
    std::string name;
    switch (status.termSignal) {
      case SIGKILL: name = "SIGKILL"; break;
      case SIGSEGV: name = "SIGSEGV"; break;
      case SIGABRT: name = "SIGABRT"; break;
      case SIGBUS: name = "SIGBUS"; break;
      case SIGXCPU: name = "SIGXCPU"; break;
      case SIGILL: name = "SIGILL"; break;
      case SIGFPE: name = "SIGFPE"; break;
      default: name = "signal"; break;
    }
    return "signal " + std::to_string(status.termSignal) + " (" +
           name + ")";
}

} // namespace ash::guard
