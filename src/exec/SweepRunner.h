/**
 * @file
 * SweepRunner: deterministic fan-out of independent sweep jobs across
 * host threads. The contract that makes `--jobs N` safe for the
 * benches:
 *
 *  1. DETERMINISM — each job sees a JobContext whose RNG is seeded
 *     from the job key alone; job-side record()/recordStats()/trace
 *     output is staged privately and merged into obs::Report /
 *     obs::Tracer in SUBMISSION order at the run() barrier. Stdout
 *     printing stays on the caller's thread after run() returns.
 *     Result: tables and --stats-json bytes are identical for any
 *     job count, including 1.
 *
 *  2. FAILURE ISOLATION — an exception thrown by a job body is
 *     captured, the job is retried up to maxAttempts times with a
 *     clean staging area, and a job that exhausts its budget becomes
 *     a JobFailure entry in a structured report instead of tearing
 *     down the whole bench. Other jobs always run to completion.
 *
 *  3. CRASH RESUMABILITY — with SweepOptions::checkpointDir set,
 *     every completed addResumable() job persists its staged output
 *     to disk (atomic tmp + rename, ckpt Snapshot binary format) and
 *     registers in a sweep manifest. A re-run with resume=true skips
 *     those jobs and replays their persisted output at the merge
 *     barrier, so a sweep killed mid-flight finishes with the same
 *     report bytes as one that never died.
 *
 * Typical use:
 *
 *   exec::SweepRunner sweep(bench::sweepOptions());
 *   sweep.add("fig11/gcd/t16", [&](exec::JobContext &ctx) { ... });
 *   ...
 *   sweep.run();                 // fan out, barrier, ordered merge
 *   for (auto &f : sweep.failures()) ...
 */

#ifndef ASH_EXEC_SWEEPRUNNER_H
#define ASH_EXEC_SWEEPRUNNER_H

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "exec/Job.h"

namespace ash::guard {
class Watchdog;
}

namespace ash::exec {

/** Knobs for one sweep. */
struct SweepOptions
{
    /** Worker threads; 0 means hardwareConcurrency(). */
    unsigned jobs = 0;

    /**
     * Lane-batch width W for addBatch() job groups (`--lanes W`):
     * compatible jobs are grouped into batches of up to W lanes and
     * evaluated together per batch attempt (one netlist pass for all
     * lanes when the body uses lanes::LaneBatchEngine). 1 = every
     * lane runs as its own single-lane batch. Does not affect add()/
     * addResumable() jobs. Submission-order merging is preserved:
     * member jobs stage results into their own JobContexts exactly
     * like solo jobs.
     */
    unsigned lanes = 1;

    /** Total tries per job (1 = no retry). */
    int maxAttempts = 2;

    /**
     * Per-job wall-clock deadline in seconds; 0 disables. In-process,
     * a watchdog thread cancels the job's CancelToken at the deadline
     * and the engine run loops unwind cooperatively; in --isolate
     * mode the child is SIGKILLed. Either way the job becomes a
     * structured Timeout JobFailure and is not retried (the deadline
     * would simply expire again).
     */
    double jobDeadlineSec = 0.0;

    /**
     * Run each job attempt in a forked subprocess (POSIX only), so a
     * crash, hard hang, or allocation runaway kills that child — not
     * the sweep. Results travel back through an atomically renamed
     * file in the ckpt Snapshot format, staged under checkpointDir
     * (or a temp dir), and merge exactly like in-process results, so
     * report bytes match non-isolate runs. Worker parallelism comes
     * from concurrent children; the in-process thread pool is NOT
     * used (forking from a multithreaded parent is unsafe). Ignored
     * while event tracing is enabled — a child's trace ring dies with
     * the child.
     */
    bool isolate = false;

    /** --isolate: child address-space limit in MiB; 0 = unlimited. */
    uint64_t isolateRssMb = 0;

    /**
     * Retry backoff: attempt k waits roughly backoffBaseMs * 2^k ms
     * (capped at backoffCapMs), scaled by a deterministic per-
     * (job, attempt) jitter in [0.5, 1.0] — reproducible at any
     * --jobs count. See retryBackoffMs().
     */
    uint64_t backoffBaseMs = 25;
    uint64_t backoffCapMs = 2000;

    /**
     * Sweep checkpoint root; empty disables job persistence. When
     * set, every completed addResumable() job writes its staged
     * output (records, stats, published values — exact doubles, in
     * the ckpt Snapshot format) to <dir>/jobs/<key>.ashjob and adds
     * itself to <dir>/sweep-manifest.json, both atomically.
     */
    std::string checkpointDir;

    /**
     * Skip manifest-completed resumable jobs, replaying their
     * persisted output at the merge barrier instead of re-running
     * the body. The report (and --stats-json) stays byte-identical
     * to an uninterrupted run. Ignored while event tracing is
     * enabled — a trace cannot be replayed from a results file.
     */
    bool resume = false;

    /**
     * Honor the process-wide shutdown flag (common/Shutdown.h):
     * once a SIGINT/SIGTERM drain is requested, unstarted jobs are
     * skipped — in-flight ones finish and persist as usual — and the
     * run is stamped interrupted in obs::Report. The batch benches
     * keep this on; the serve daemon turns it off because its own
     * drain must still ANSWER every admitted request.
     */
    bool drainOnShutdown = true;
};

/**
 * Deterministic retry delay before attempt @p attempt+1 of the job
 * with seed root @p seed (exec::stableSeed of the job key): bounded
 * exponential backoff with seeded jitter. Pure function of its
 * arguments — never of thread count, schedule, or wall clock — so
 * retried sweeps stay reproducible across --jobs counts.
 */
uint64_t retryBackoffMs(uint64_t seed, int attempt, uint64_t baseMs,
                        uint64_t capMs);

/**
 * One attempt's view of a lane batch (SweepRunner::addBatch). The
 * body sees only the lanes ACTIVE this attempt — on a retry that is
 * just the previously failing lanes — as a dense [0, laneCount)
 * range; laneSlot() recovers each lane's original slot in the batch
 * so the body can replay the exact per-lane scenario. Per-lane
 * results go through lane(k)'s JobContext (record/publish/...),
 * which merges at the sweep barrier exactly like a solo job's.
 */
class BatchContext
{
  public:
    /** Batch name (the addBatch group key). */
    const std::string &name() const { return _name; }

    /** Full batch width W (member lanes, active or not). */
    size_t width() const { return _width; }

    /** Lanes active this attempt. */
    size_t laneCount() const { return _lanes.size(); }

    /** The k-th active lane's JobContext (k < laneCount()). */
    JobContext &lane(size_t k) { return *_lanes.at(k); }

    /** Original batch slot of the k-th active lane. */
    size_t laneSlot(size_t k) const { return _slots.at(k); }

    /**
     * Mark the k-th active lane failed this attempt. The batch keeps
     * running; at the attempt boundary only failed lanes are retried
     * (with a fresh staging area), while completed lanes keep their
     * results. An exception thrown from the body instead fails every
     * active lane.
     */
    void failLane(size_t k, std::string error);

  private:
    friend class SweepRunner;
    std::string _name;
    size_t _width = 0;
    std::vector<JobContext *> _lanes;
    std::vector<size_t> _slots;
    std::vector<std::string> _laneErrors;  ///< "" = ok so far.
};

/** Deterministic parallel sweep executor; see file header. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /**
     * Enqueue one job. @p name must be unique and stable across
     * runs — it keys the job's RNG seed and labels its log lines and
     * failure entries.
     */
    void add(std::string name, std::function<void(JobContext &)> body);

    /**
     * Enqueue a RESUMABLE job: one whose externally visible output
     * flows entirely through ctx.record()/recordStats()/publish()/
     * publishStats() — no captured-reference side effects — so a
     * completed instance found in the sweep manifest can be skipped
     * on resume and its persisted output replayed bit-exactly.
     */
    void addResumable(std::string name,
                      std::function<void(JobContext &)> body);

    /**
     * Enqueue a group of compatible jobs (same design/config, one
     * scenario each) evaluated as lane batches of up to
     * SweepOptions::lanes lanes per attempt. Each entry of
     * @p laneNames becomes one member job — with its own JobContext,
     * submission-order merge slot, failure entry, and resource bill —
     * and @p body runs once per batch attempt with a BatchContext
     * over the active lanes. Retries re-run only the failing lanes.
     * The per-lane determinism contract: a lane's staged results must
     * not depend on the batch width or on which other lanes are
     * active (lanes::LaneBatchEngine guarantees exactly this), so any
     * --lanes value produces byte-identical reports. Batch members
     * are not resumable; in --isolate mode batches run in-process.
     */
    void addBatch(std::string name,
                  const std::vector<std::string> &laneNames,
                  std::function<void(BatchContext &)> body);

    /** Jobs enqueued so far. */
    size_t jobCount() const { return _jobs.size(); }

    /** Resolved worker-thread count this sweep will use. */
    unsigned resolvedJobs() const;

    /**
     * Run every job, wait for all of them (the merge barrier), then
     * apply each job's staged results in submission order and log a
     * structured failure report for any job that exhausted its
     * retries. Returns failures() for convenience. May be called
     * once.
     */
    const std::vector<JobFailure> &run();

    /** Failures from the completed run (submission order). */
    const std::vector<JobFailure> &failures() const
    { return _failures; }

    /**
     * Post-run: job @p i's context, holding its records and
     * published output (replayed from disk when the job was skipped).
     */
    const JobContext &job(size_t i) const;

    /** Jobs the completed run skipped via the resume manifest. */
    size_t skippedJobs() const { return _skipped; }

    /** Jobs never started because a shutdown drain was requested. */
    size_t interruptedJobs() const { return _interrupted; }

  private:
    struct PendingJob
    {
        std::string name;
        std::function<void(JobContext &)> body;
        bool resumable = false;
        int batch = -1;  ///< Index into _batches; -1 = solo job.
        int lane = -1;   ///< Lane slot within the batch.
    };

    struct PendingBatch
    {
        std::string name;
        std::function<void(BatchContext &)> body;
        std::vector<size_t> members;  ///< Job indices, lane order.
    };

    /** Run job @p i with retry; never throws. */
    void executeJob(size_t i);

    /** Run batch @p b, retrying only failing lanes; never throws. */
    void executeBatch(size_t b);

    /** --isolate: fork-per-attempt dispatch loop over all jobs. */
    void runIsolated(const std::vector<char> &skip);

    /** Serialize @p ctx's staged output to @p path (tmp + rename). */
    bool writeResultsFile(const std::string &path,
                          const JobContext &ctx);

    /** Load a results file into @p ctx; throws ash::Error on damage. */
    void readResultsFile(const std::string &path, JobContext &ctx);

    /** Best-effort: persist job @p i's staged output + manifest. */
    void persistJob(size_t i);

    /** Load job @p i's persisted output into its context. */
    bool replayJob(size_t i);

    /** Merge <checkpointDir>/sweep-manifest.json into _manifest. */
    void loadManifest();

    /** Rewrite the manifest atomically; caller holds _manifestMutex. */
    void saveManifestLocked();

    std::string jobsDir() const;
    std::string manifestPath() const;

    SweepOptions _opts;
    std::vector<PendingJob> _jobs;
    std::vector<PendingBatch> _batches;
    std::vector<std::unique_ptr<JobContext>> _contexts;
    std::vector<std::unique_ptr<JobFailure>> _failureSlots;
    std::vector<JobFailure> _failures;
    /** Completed job key -> results file, relative to checkpointDir. */
    std::map<std::string, std::string> _manifest;
    std::mutex _manifestMutex;
    size_t _skipped = 0;
    size_t _interrupted = 0;
    bool _ran = false;
    /** Live only inside run(), when jobDeadlineSec > 0 in-process. */
    guard::Watchdog *_watchdog = nullptr;
};

} // namespace ash::exec

#endif // ASH_EXEC_SWEEPRUNNER_H
