/**
 * @file
 * SweepRunner: deterministic fan-out of independent sweep jobs across
 * host threads. The contract that makes `--jobs N` safe for the
 * benches:
 *
 *  1. DETERMINISM — each job sees a JobContext whose RNG is seeded
 *     from the job key alone; job-side record()/recordStats()/trace
 *     output is staged privately and merged into obs::Report /
 *     obs::Tracer in SUBMISSION order at the run() barrier. Stdout
 *     printing stays on the caller's thread after run() returns.
 *     Result: tables and --stats-json bytes are identical for any
 *     job count, including 1.
 *
 *  2. FAILURE ISOLATION — an exception thrown by a job body is
 *     captured, the job is retried up to maxAttempts times with a
 *     clean staging area, and a job that exhausts its budget becomes
 *     a JobFailure entry in a structured report instead of tearing
 *     down the whole bench. Other jobs always run to completion.
 *
 * Typical use:
 *
 *   exec::SweepRunner sweep(bench::sweepOptions());
 *   sweep.add("fig11/gcd/t16", [&](exec::JobContext &ctx) { ... });
 *   ...
 *   sweep.run();                 // fan out, barrier, ordered merge
 *   for (auto &f : sweep.failures()) ...
 */

#ifndef ASH_EXEC_SWEEPRUNNER_H
#define ASH_EXEC_SWEEPRUNNER_H

#include <functional>
#include <string>
#include <vector>

#include "exec/Job.h"

namespace ash::exec {

/** Knobs for one sweep. */
struct SweepOptions
{
    /** Worker threads; 0 means hardwareConcurrency(). */
    unsigned jobs = 0;

    /** Total tries per job (1 = no retry). */
    int maxAttempts = 2;
};

/** Deterministic parallel sweep executor; see file header. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = {});
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    /**
     * Enqueue one job. @p name must be unique and stable across
     * runs — it keys the job's RNG seed and labels its log lines and
     * failure entries.
     */
    void add(std::string name, std::function<void(JobContext &)> body);

    /** Jobs enqueued so far. */
    size_t jobCount() const { return _jobs.size(); }

    /** Resolved worker-thread count this sweep will use. */
    unsigned resolvedJobs() const;

    /**
     * Run every job, wait for all of them (the merge barrier), then
     * apply each job's staged results in submission order and log a
     * structured failure report for any job that exhausted its
     * retries. Returns failures() for convenience. May be called
     * once.
     */
    const std::vector<JobFailure> &run();

    /** Failures from the completed run (submission order). */
    const std::vector<JobFailure> &failures() const
    { return _failures; }

  private:
    struct PendingJob
    {
        std::string name;
        std::function<void(JobContext &)> body;
    };

    /** Run job @p i with retry; never throws. */
    void executeJob(size_t i);

    SweepOptions _opts;
    std::vector<PendingJob> _jobs;
    std::vector<std::unique_ptr<JobContext>> _contexts;
    std::vector<std::unique_ptr<JobFailure>> _failureSlots;
    std::vector<JobFailure> _failures;
    bool _ran = false;
};

} // namespace ash::exec

#endif // ASH_EXEC_SWEEPRUNNER_H
