#include "exec/Job.h"

#include "obs/Trace.h"

namespace ash::exec {

namespace {

thread_local JobContext *tlsCurrent = nullptr;

} // namespace

namespace detail {

/** Internal: SweepRunner installs/clears the thread's job. */
void
setCurrentJob(JobContext *ctx)
{
    tlsCurrent = ctx;
}

} // namespace detail

const char *
failureKindName(FailureKind kind)
{
    switch (kind) {
      case FailureKind::Exception: return "exception";
      case FailureKind::Timeout: return "timeout";
      case FailureKind::Crash: return "crash";
      case FailureKind::Oom: return "oom";
    }
    return "?";
}

uint64_t
stableSeed(const std::string &name)
{
    // FNV-1a 64-bit: stable across platforms and standard libraries,
    // which is the whole point — the seed must depend only on the
    // job key.
    uint64_t h = 1469598103934665603ull;
    for (unsigned char c : name) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

JobContext::JobContext(std::string name, size_t index)
    : _name(std::move(name)), _index(index),
      _seed(stableSeed(_name)), _rng(_seed)
{
}

JobContext::~JobContext() = default;

JobContext *
JobContext::current()
{
    return tlsCurrent;
}

double
JobContext::publishedValue(const std::string &key, double def) const
{
    // Last wins, matching what a re-run of the body would leave in a
    // plain variable the job assigned more than once.
    double value = def;
    for (const auto &[k, v] : _published) {
        if (k == key)
            value = v;
    }
    return value;
}

const StatSet *
JobContext::publishedStats(const std::string &key) const
{
    const StatSet *found = nullptr;
    for (const auto &[k, s] : _pubStats) {
        if (k == key)
            found = &s;
    }
    return found;
}

void
JobContext::beginAttempt(int attempt)
{
    _attempt = attempt;
    _records.clear();
    _stats.clear();
    _published.clear();
    _pubStats.clear();
    _engineRuns = 0;
    _replayed = false;
    // Distinct but deterministic stream per attempt: a retried job
    // must not replay the exact failure-correlated stream, yet two
    // hosts retrying the same job must agree.
    _rng.reseed(_seed + 0x9e3779b97f4a7c15ull *
                            static_cast<uint64_t>(attempt));
    if (obs::Tracer::enabled()) {
        _tracer = std::make_unique<obs::Tracer>();
        _tracer->setCapacityPerTile(
            obs::Tracer::process().capacityPerTile());
    } else {
        _tracer.reset();
    }
}

} // namespace ash::exec
