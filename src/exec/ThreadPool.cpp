#include "exec/ThreadPool.h"

namespace ash::exec {

namespace {

/** Worker identity for same-pool nested submits. */
thread_local ThreadPool *tlsPool = nullptr;
thread_local unsigned tlsWorker = 0;

} // namespace

unsigned
hardwareConcurrency()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareConcurrency();
    _deques.resize(threads);
    _threads.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        _threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _idleCv.notify_all();
    for (std::thread &t : _threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> fn)
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        if (tlsPool == this) {
            // Nested fan-out: keep it local and LIFO so the freshest
            // (cache-warm) work runs first; thieves take the oldest.
            _deques[tlsWorker].push_front(std::move(fn));
        } else {
            _deques[_nextDeque].push_back(std::move(fn));
            _nextDeque = (_nextDeque + 1) % _deques.size();
        }
        ++_inFlight;
    }
    _idleCv.notify_one();
}

bool
ThreadPool::popTask(unsigned self, std::function<void()> &out)
{
    if (!_deques[self].empty()) {
        out = std::move(_deques[self].front());
        _deques[self].pop_front();
        return true;
    }
    for (size_t k = 1; k < _deques.size(); ++k) {
        size_t victim = (self + k) % _deques.size();
        if (!_deques[victim].empty()) {
            out = std::move(_deques[victim].back());
            _deques[victim].pop_back();
            ++_steals;
            return true;
        }
    }
    return false;
}

void
ThreadPool::workerLoop(unsigned self)
{
    tlsPool = this;
    tlsWorker = self;
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        std::function<void()> task;
        if (popTask(self, task)) {
            lock.unlock();
            task();
            task = nullptr;   // Destroy captures outside the lock.
            lock.lock();
            if (--_inFlight == 0)
                _doneCv.notify_all();
            continue;
        }
        // Drain-on-shutdown: only exit once no task is available.
        if (_stop)
            return;
        _idleCv.wait(lock);
    }
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _doneCv.wait(lock, [this] { return _inFlight == 0; });
}

uint64_t
ThreadPool::stealCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _steals;
}

} // namespace ash::exec
