/**
 * @file
 * Host-parallel work-stealing thread pool for ash_exec. One pool owns
 * N worker threads, each with its own deque: owners push and pop at
 * the front (LIFO, cache-warm), idle workers steal from the back of a
 * victim's deque (FIFO, oldest work first). Tasks submitted from
 * outside the pool are distributed round-robin; tasks submitted from
 * inside a worker (nested fan-out) land on that worker's own deque.
 *
 * Locking granularity: a single pool mutex guards all deques and the
 * idle/done condition variables. ash_exec jobs are whole simulations
 * (milliseconds to seconds), so dispatch is far off the critical path;
 * micro_structures tracks the per-dispatch overhead to keep it honest.
 *
 * Shutdown semantics: the destructor DRAINS — every task submitted
 * before destruction runs to completion before the workers join. Tasks
 * must not throw (SweepRunner catches per-job exceptions before the
 * pool sees them) and must not call wait() from inside a task.
 */

#ifndef ASH_EXEC_THREADPOOL_H
#define ASH_EXEC_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ash::exec {

/** Number of host hardware threads (always >= 1). */
unsigned hardwareConcurrency();

/** Work-stealing thread pool; see file header for semantics. */
class ThreadPool
{
  public:
    /** @p threads == 0 means hardwareConcurrency(). */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p fn; runs on some worker thread. Must not throw. */
    void submit(std::function<void()> fn);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned threadCount() const
    { return static_cast<unsigned>(_deques.size()); }

    /** Tasks executed by a worker that did not own them. */
    uint64_t stealCount() const;

  private:
    void workerLoop(unsigned self);

    /**
     * Pop the next task for worker @p self (own front, else steal
     * from a victim's back). Caller must hold _mutex. Returns false
     * when every deque is empty.
     */
    bool popTask(unsigned self, std::function<void()> &out);

    std::vector<std::deque<std::function<void()>>> _deques;
    std::vector<std::thread> _threads;
    mutable std::mutex _mutex;
    std::condition_variable _idleCv;   ///< Workers sleep here.
    std::condition_variable _doneCv;   ///< wait() sleeps here.
    uint64_t _inFlight = 0;   ///< Queued + running, under _mutex.
    uint64_t _steals = 0;     ///< Under _mutex.
    unsigned _nextDeque = 0;  ///< Round-robin target, under _mutex.
    bool _stop = false;       ///< Under _mutex.
};

} // namespace ash::exec

#endif // ASH_EXEC_THREADPOOL_H
