#include "exec/SweepRunner.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "ckpt/Checkpoint.h"
#include "common/Json.h"
#include "common/Logging.h"
#include "exec/ThreadPool.h"
#include "obs/Report.h"
#include "obs/Trace.h"

namespace fs = std::filesystem;

namespace ash::exec {

namespace {

// Persisted job results reuse the ckpt Snapshot container (CRC per
// section, structured errors): engine name "sweep-job", the job key's
// stableSeed as the fingerprint (so a file renamed onto another job
// is rejected), and the layout version as the config hash.
constexpr uint32_t kSecValues = 1;
constexpr uint32_t kSecStats = 2;
constexpr uint64_t kResultLayout = 1;

void
writeKvs(ckpt::SnapshotWriter &w,
         const std::vector<std::pair<std::string, double>> &kvs)
{
    w.u64(kvs.size());
    for (const auto &[key, value] : kvs) {
        w.str(key);
        w.f64(value);
    }
}

void
readKvs(ckpt::SnapshotReader &r,
        std::vector<std::pair<std::string, double>> &out)
{
    out.clear();
    uint64_t n = r.u64();
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        double value = r.f64();
        out.emplace_back(std::move(key), value);
    }
}

void
writeStatsList(ckpt::SnapshotWriter &w,
               const std::vector<std::pair<std::string, StatSet>> &list)
{
    w.u64(list.size());
    for (const auto &[key, stats] : list) {
        w.str(key);
        ckpt::saveStats(w, stats);
    }
}

void
readStatsList(ckpt::SnapshotReader &r,
              std::vector<std::pair<std::string, StatSet>> &out)
{
    out.clear();
    uint64_t n = r.u64();
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        StatSet stats;
        ckpt::restoreStats(r, stats);
        out.emplace_back(std::move(key), std::move(stats));
    }
}

} // namespace

SweepRunner::SweepRunner(SweepOptions opts) : _opts(std::move(opts)) {}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::add(std::string name,
                 std::function<void(JobContext &)> body)
{
    ASH_ASSERT(!_ran, "SweepRunner::add after run()");
    _jobs.push_back({std::move(name), std::move(body), false});
}

void
SweepRunner::addResumable(std::string name,
                          std::function<void(JobContext &)> body)
{
    ASH_ASSERT(!_ran, "SweepRunner::addResumable after run()");
    _jobs.push_back({std::move(name), std::move(body), true});
}

unsigned
SweepRunner::resolvedJobs() const
{
    return _opts.jobs != 0 ? _opts.jobs : hardwareConcurrency();
}

const JobContext &
SweepRunner::job(size_t i) const
{
    ASH_ASSERT(_ran, "SweepRunner::job before run()");
    ASH_ASSERT(i < _contexts.size());
    return *_contexts[i];
}

std::string
SweepRunner::jobsDir() const
{
    return (fs::path(_opts.checkpointDir) / "jobs").string();
}

std::string
SweepRunner::manifestPath() const
{
    return (fs::path(_opts.checkpointDir) / "sweep-manifest.json")
        .string();
}

void
SweepRunner::loadManifest()
{
    std::ifstream in(manifestPath());
    if (!in)
        return;
    std::ostringstream text;
    text << in.rdbuf();

    JsonValue doc;
    std::string err;
    if (!jsonParse(text.str(), doc, &err)) {
        warn("sweep manifest '%s' unreadable (%s); ignoring",
             manifestPath().c_str(), err.c_str());
        return;
    }
    if (doc["format"].string() != "ash-sweep-manifest" ||
        doc["version"].asU64() != 1) {
        warn("sweep manifest '%s' has unknown format/version; "
             "ignoring",
             manifestPath().c_str());
        return;
    }
    for (const JsonValue &entry : doc["completed"].array()) {
        if (entry["job"].isString() && entry["file"].isString())
            _manifest[entry["job"].string()] =
                entry["file"].string();
    }
}

void
SweepRunner::saveManifestLocked()
{
    JsonWriter j;
    j.beginObject();
    j.kv("format", "ash-sweep-manifest");
    j.kv("version", uint64_t(1));
    j.key("completed").beginArray();
    for (const auto &[jobName, file] : _manifest) {
        j.beginObject();
        j.kv("job", jobName);
        j.kv("file", file);
        j.endObject();
    }
    j.endArray();
    j.endObject();

    const std::string path = manifestPath();
    const std::string tmp = path + ".tmp";
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
        warn("cannot write sweep manifest '%s'", tmp.c_str());
        return;
    }
    out << j.str() << "\n";
    out.flush();
    if (!out) {
        warn("short write on sweep manifest '%s'", tmp.c_str());
        return;
    }
    out.close();
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        warn("cannot publish sweep manifest '%s': %s", path.c_str(),
             ec.message().c_str());
}

void
SweepRunner::persistJob(size_t i)
{
    // Best effort: a persistence failure costs a re-run on resume,
    // never the sweep itself.
    const JobContext &ctx = *_contexts[i];
    const std::string file =
        ckpt::CheckpointManager::sanitizeKey(ctx.name()) + ".ashjob";
    try {
        fs::create_directories(jobsDir());
        const std::string path =
            (fs::path(jobsDir()) / file).string();
        const std::string tmp = path + ".tmp";
        {
            std::ofstream out(tmp,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                warn("cannot write job results '%s'", tmp.c_str());
                return;
            }
            ckpt::SnapshotWriter w(out, "sweep-job",
                                   stableSeed(ctx.name()),
                                   kResultLayout);
            w.beginSection(kSecValues);
            writeKvs(w, ctx._records);
            writeKvs(w, ctx._published);
            w.endSection();
            w.beginSection(kSecStats);
            writeStatsList(w, ctx._stats);
            writeStatsList(w, ctx._pubStats);
            w.endSection();
            out.flush();
            if (!out) {
                warn("short write on job results '%s'", tmp.c_str());
                return;
            }
        }
        fs::rename(tmp, path);
    } catch (const fs::filesystem_error &e) {
        warn("cannot persist job '%s': %s", ctx.name().c_str(),
             e.what());
        return;
    }
    std::lock_guard<std::mutex> lock(_manifestMutex);
    _manifest[ctx.name()] = "jobs/" + file;
    saveManifestLocked();
}

bool
SweepRunner::replayJob(size_t i)
{
    JobContext &ctx = *_contexts[i];
    auto it = _manifest.find(ctx.name());
    if (it == _manifest.end())
        return false;
    std::ifstream in(fs::path(_opts.checkpointDir) / it->second,
                     std::ios::binary);
    if (!in) {
        warn("resume: results file for job '%s' missing; re-running",
             ctx.name().c_str());
        return false;
    }
    try {
        ckpt::SnapshotReader r(in);
        r.require("sweep-job", stableSeed(ctx.name()), kResultLayout);
        r.section(kSecValues);
        readKvs(r, ctx._records);
        readKvs(r, ctx._published);
        r.endSection();
        r.section(kSecStats);
        readStatsList(r, ctx._stats);
        readStatsList(r, ctx._pubStats);
        r.endSection();
        r.expectEnd();
    } catch (const ckpt::SnapshotError &e) {
        warn("resume: results for job '%s' unusable (%s); re-running",
             ctx.name().c_str(), e.what());
        ctx._records.clear();
        ctx._stats.clear();
        ctx._published.clear();
        ctx._pubStats.clear();
        return false;
    }
    ctx._replayed = true;
    return true;
}

void
SweepRunner::executeJob(size_t i)
{
    JobContext &ctx = *_contexts[i];
    const int max_attempts = std::max(1, _opts.maxAttempts);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        ctx.beginAttempt(attempt);
        detail::setCurrentJob(&ctx);
        setLogJobId(static_cast<int64_t>(i));
        if (ctx._tracer)
            obs::Tracer::setThreadActive(ctx._tracer.get());

        std::string err;
        try {
            _jobs[i].body(ctx);
        } catch (const std::exception &e) {
            err = e.what();
        } catch (...) {
            err = "unknown exception";
        }

        obs::Tracer::setThreadActive(nullptr);
        setLogJobId(-1);
        detail::setCurrentJob(nullptr);

        if (err.empty()) {
            if (_jobs[i].resumable && !_opts.checkpointDir.empty())
                persistJob(i);
            return;
        }
        if (attempt + 1 < max_attempts) {
            warn("job '%s' attempt %d/%d failed: %s — retrying",
                 ctx.name().c_str(), attempt + 1, max_attempts,
                 err.c_str());
            continue;
        }
        auto failure = std::make_unique<JobFailure>();
        failure->job = ctx.name();
        failure->index = i;
        failure->attempts = max_attempts;
        failure->error = err;
        _failureSlots[i] = std::move(failure);
    }
}

const std::vector<JobFailure> &
SweepRunner::run()
{
    ASH_ASSERT(!_ran, "SweepRunner::run called twice");
    _ran = true;

    _contexts.reserve(_jobs.size());
    for (size_t i = 0; i < _jobs.size(); ++i)
        _contexts.push_back(
            std::make_unique<JobContext>(_jobs[i].name, i));
    _failureSlots.resize(_jobs.size());

    // Resume: load the manifest whenever persistence is on (so a
    // repeated sweep extends it rather than clobbering it), and when
    // asked, skip manifest-completed resumable jobs by replaying
    // their persisted output into their contexts up front.
    std::vector<char> skip(_jobs.size(), 0);
    if (!_opts.checkpointDir.empty())
        loadManifest();
    if (_opts.resume && !_manifest.empty()) {
        if (obs::Tracer::enabled()) {
            inform("resume: event tracing is on; re-running all "
                   "jobs (traces cannot be replayed)");
        } else {
            for (size_t i = 0; i < _jobs.size(); ++i) {
                if (_jobs[i].resumable && replayJob(i)) {
                    skip[i] = 1;
                    ++_skipped;
                }
            }
            if (_skipped != 0)
                inform("resume: skipping %zu of %zu completed "
                       "job(s)",
                       _skipped, _jobs.size());
        }
    }

    const unsigned threads = std::min<size_t>(
        resolvedJobs(), std::max<size_t>(_jobs.size(), 1));
    if (threads <= 1) {
        // Single-job mode runs inline on the caller's thread — same
        // JobContext plumbing, no thread handoff, so `--jobs 1` is
        // also the zero-risk fallback path.
        for (size_t i = 0; i < _jobs.size(); ++i)
            if (!skip[i])
                executeJob(i);
    } else {
        ThreadPool pool(threads);
        for (size_t i = 0; i < _jobs.size(); ++i)
            if (!skip[i])
                pool.submit([this, i] { executeJob(i); });
        pool.wait();
    }

    // Merge barrier: apply every job's staged output in submission
    // order, so the report (and its JSON) is independent of both the
    // completion order and the job count.
    obs::Report &report = obs::Report::global();
    for (size_t i = 0; i < _contexts.size(); ++i) {
        JobContext &ctx = *_contexts[i];
        for (const auto &[key, value] : ctx._records)
            report.record(key, value);
        for (const auto &[scope, stats] : ctx._stats)
            report.recordStats(scope, stats);
        if (ctx._tracer)
            obs::Tracer::process().mergeFrom(*ctx._tracer);
        if (_failureSlots[i])
            _failures.push_back(*_failureSlots[i]);
    }

    if (!_failures.empty()) {
        warn("ash_exec sweep: %zu of %zu jobs FAILED:",
             _failures.size(), _jobs.size());
        for (const JobFailure &f : _failures)
            warn("  job '%s' (#%zu) failed after %d attempt%s: %s",
                 f.job.c_str(), f.index, f.attempts,
                 f.attempts == 1 ? "" : "s", f.error.c_str());
    }
    return _failures;
}

} // namespace ash::exec
