#include "exec/SweepRunner.h"

#include <algorithm>

#include "common/Logging.h"
#include "exec/ThreadPool.h"
#include "obs/Report.h"
#include "obs/Trace.h"

namespace ash::exec {

SweepRunner::SweepRunner(SweepOptions opts) : _opts(opts) {}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::add(std::string name,
                 std::function<void(JobContext &)> body)
{
    ASH_ASSERT(!_ran, "SweepRunner::add after run()");
    _jobs.push_back({std::move(name), std::move(body)});
}

unsigned
SweepRunner::resolvedJobs() const
{
    return _opts.jobs != 0 ? _opts.jobs : hardwareConcurrency();
}

void
SweepRunner::executeJob(size_t i)
{
    JobContext &ctx = *_contexts[i];
    const int max_attempts = std::max(1, _opts.maxAttempts);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        ctx.beginAttempt(attempt);
        detail::setCurrentJob(&ctx);
        setLogJobId(static_cast<int64_t>(i));
        if (ctx._tracer)
            obs::Tracer::setThreadActive(ctx._tracer.get());

        std::string err;
        try {
            _jobs[i].body(ctx);
        } catch (const std::exception &e) {
            err = e.what();
        } catch (...) {
            err = "unknown exception";
        }

        obs::Tracer::setThreadActive(nullptr);
        setLogJobId(-1);
        detail::setCurrentJob(nullptr);

        if (err.empty())
            return;
        if (attempt + 1 < max_attempts) {
            warn("job '%s' attempt %d/%d failed: %s — retrying",
                 ctx.name().c_str(), attempt + 1, max_attempts,
                 err.c_str());
            continue;
        }
        auto failure = std::make_unique<JobFailure>();
        failure->job = ctx.name();
        failure->index = i;
        failure->attempts = max_attempts;
        failure->error = err;
        _failureSlots[i] = std::move(failure);
    }
}

const std::vector<JobFailure> &
SweepRunner::run()
{
    ASH_ASSERT(!_ran, "SweepRunner::run called twice");
    _ran = true;

    _contexts.reserve(_jobs.size());
    for (size_t i = 0; i < _jobs.size(); ++i)
        _contexts.push_back(
            std::make_unique<JobContext>(_jobs[i].name, i));
    _failureSlots.resize(_jobs.size());

    const unsigned threads = std::min<size_t>(
        resolvedJobs(), std::max<size_t>(_jobs.size(), 1));
    if (threads <= 1) {
        // Single-job mode runs inline on the caller's thread — same
        // JobContext plumbing, no thread handoff, so `--jobs 1` is
        // also the zero-risk fallback path.
        for (size_t i = 0; i < _jobs.size(); ++i)
            executeJob(i);
    } else {
        ThreadPool pool(threads);
        for (size_t i = 0; i < _jobs.size(); ++i)
            pool.submit([this, i] { executeJob(i); });
        pool.wait();
    }

    // Merge barrier: apply every job's staged output in submission
    // order, so the report (and its JSON) is independent of both the
    // completion order and the job count.
    obs::Report &report = obs::Report::global();
    for (size_t i = 0; i < _contexts.size(); ++i) {
        JobContext &ctx = *_contexts[i];
        for (const auto &[key, value] : ctx._records)
            report.record(key, value);
        for (const auto &[scope, stats] : ctx._stats)
            report.recordStats(scope, stats);
        if (ctx._tracer)
            obs::Tracer::process().mergeFrom(*ctx._tracer);
        if (_failureSlots[i])
            _failures.push_back(*_failureSlots[i]);
    }

    if (!_failures.empty()) {
        warn("ash_exec sweep: %zu of %zu jobs FAILED:",
             _failures.size(), _jobs.size());
        for (const JobFailure &f : _failures)
            warn("  job '%s' (#%zu) failed after %d attempt%s: %s",
                 f.job.c_str(), f.index, f.attempts,
                 f.attempts == 1 ? "" : "s", f.error.c_str());
    }
    return _failures;
}

} // namespace ash::exec
