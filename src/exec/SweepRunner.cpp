#include "exec/SweepRunner.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <ctime>
#include <deque>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <sys/resource.h>
#include <thread>
#include <unistd.h>

#include "ckpt/Checkpoint.h"
#include "common/Json.h"
#include "common/Logging.h"
#include "common/Shutdown.h"
#include "common/TmpPath.h"
#include "exec/ThreadPool.h"
#include "guard/Cancel.h"
#include "guard/Fault.h"
#include "guard/Isolate.h"
#include "guard/Watchdog.h"
#include "obs/Report.h"
#include "obs/Trace.h"
#include "prof/Prof.h"

namespace fs = std::filesystem;

namespace ash::exec {

namespace {

// Persisted job results reuse the ckpt Snapshot container (CRC per
// section, structured errors): engine name "sweep-job", the job key's
// stableSeed as the fingerprint (so a file renamed onto another job
// is rejected), and the layout version as the config hash.
constexpr uint32_t kSecValues = 1;
constexpr uint32_t kSecStats = 2;
constexpr uint64_t kResultLayout = 1;

void
writeKvs(ckpt::SnapshotWriter &w,
         const std::vector<std::pair<std::string, double>> &kvs)
{
    w.u64(kvs.size());
    for (const auto &[key, value] : kvs) {
        w.str(key);
        w.f64(value);
    }
}

void
readKvs(ckpt::SnapshotReader &r,
        std::vector<std::pair<std::string, double>> &out)
{
    out.clear();
    uint64_t n = r.u64();
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        double value = r.f64();
        out.emplace_back(std::move(key), value);
    }
}

void
writeStatsList(ckpt::SnapshotWriter &w,
               const std::vector<std::pair<std::string, StatSet>> &list)
{
    w.u64(list.size());
    for (const auto &[key, stats] : list) {
        w.str(key);
        ckpt::saveStats(w, stats);
    }
}

void
readStatsList(ckpt::SnapshotReader &r,
              std::vector<std::pair<std::string, StatSet>> &out)
{
    out.clear();
    uint64_t n = r.u64();
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        StatSet stats;
        ckpt::restoreStats(r, stats);
        out.emplace_back(std::move(key), std::move(stats));
    }
}

/** Fault scope = the running job's key; see guard/Fault.h. */
std::string
currentJobScope()
{
    JobContext *ctx = JobContext::current();
    return ctx ? ctx->name() : std::string();
}

// --- job resource accounting (only sampled while ash_prof is armed) --

double
attemptWallSec()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double
attemptThreadCpuSec()
{
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0)
        return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
}

long
processPeakRssKb()
{
    rusage ru{};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss;   // Linux: KiB.
}

/** Stable outcome label for one attempt's exit cause. */
const char *
attemptOutcomeName(FailureKind kind)
{
    switch (kind) {
    case FailureKind::Timeout: return "timeout";
    case FailureKind::Oom: return "oom";
    case FailureKind::Crash: return "crash";
    case FailureKind::Exception: break;
    }
    return "error";
}

} // namespace

uint64_t
retryBackoffMs(uint64_t seed, int attempt, uint64_t baseMs,
               uint64_t capMs)
{
    if (baseMs == 0)
        return 0;
    // Bounded exponential: base * 2^attempt, saturating at the cap.
    uint64_t delay = baseMs;
    for (int i = 0; i < attempt && delay < capMs; ++i)
        delay *= 2;
    delay = std::min(delay, std::max(capMs, baseMs));
    // Seeded jitter in [0.5, 1.0): splitmix64 of (seed, attempt) —
    // a pure function, so every --jobs count replays the same delay.
    uint64_t z = seed + 0x9e3779b97f4a7c15ull *
                            (static_cast<uint64_t>(attempt) + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    double frac =
        0.5 + 0.5 * (static_cast<double>(z >> 11) *
                     (1.0 / 9007199254740992.0));
    return static_cast<uint64_t>(static_cast<double>(delay) * frac);
}

void
BatchContext::failLane(size_t k, std::string error)
{
    ASH_ASSERT(k < _laneErrors.size(),
               "BatchContext::failLane: lane out of range");
    if (error.empty())
        error = "lane failed";
    _laneErrors[k] = std::move(error);
}

SweepRunner::SweepRunner(SweepOptions opts) : _opts(std::move(opts))
{
    // Fault decisions are attributed to the running job; the inline
    // slot makes this idempotent and link-cycle-free.
    guard::setFaultScopeProvider(&currentJobScope);
}

SweepRunner::~SweepRunner() = default;

void
SweepRunner::add(std::string name,
                 std::function<void(JobContext &)> body)
{
    ASH_ASSERT(!_ran, "SweepRunner::add after run()");
    _jobs.push_back({std::move(name), std::move(body), false});
}

void
SweepRunner::addResumable(std::string name,
                          std::function<void(JobContext &)> body)
{
    ASH_ASSERT(!_ran, "SweepRunner::addResumable after run()");
    _jobs.push_back({std::move(name), std::move(body), true});
}

void
SweepRunner::addBatch(std::string name,
                      const std::vector<std::string> &laneNames,
                      std::function<void(BatchContext &)> body)
{
    ASH_ASSERT(!_ran, "SweepRunner::addBatch after run()");
    ASH_ASSERT(!laneNames.empty(), "SweepRunner::addBatch: no lanes");
    // Chunk into groups of at most SweepOptions::lanes lanes. Group
    // names only grow a "/b<g>" suffix when there is more than one
    // group, so `--lanes W >= laneNames.size()` keeps the plain name.
    const size_t width = std::max(1u, _opts.lanes);
    const size_t groups = (laneNames.size() + width - 1) / width;
    for (size_t g = 0; g < groups; ++g) {
        PendingBatch batch;
        batch.name =
            groups == 1 ? name : name + "/b" + std::to_string(g);
        batch.body = body;
        const size_t lo = g * width;
        const size_t hi = std::min(laneNames.size(), lo + width);
        for (size_t j = lo; j < hi; ++j) {
            PendingJob member;
            member.name = laneNames[j];
            member.batch = static_cast<int>(_batches.size());
            member.lane = static_cast<int>(j - lo);
            batch.members.push_back(_jobs.size());
            _jobs.push_back(std::move(member));
        }
        _batches.push_back(std::move(batch));
    }
}

unsigned
SweepRunner::resolvedJobs() const
{
    return _opts.jobs != 0 ? _opts.jobs : hardwareConcurrency();
}

const JobContext &
SweepRunner::job(size_t i) const
{
    ASH_ASSERT(_ran, "SweepRunner::job before run()");
    ASH_ASSERT(i < _contexts.size());
    return *_contexts[i];
}

std::string
SweepRunner::jobsDir() const
{
    return (fs::path(_opts.checkpointDir) / "jobs").string();
}

std::string
SweepRunner::manifestPath() const
{
    return (fs::path(_opts.checkpointDir) / "sweep-manifest.json")
        .string();
}

void
SweepRunner::loadManifest()
{
    std::ifstream in(manifestPath());
    if (!in)
        return;
    std::ostringstream text;
    text << in.rdbuf();

    JsonValue doc;
    std::string err;
    if (!jsonParse(text.str(), doc, &err)) {
        warn("sweep manifest '%s' unreadable (%s); ignoring",
             manifestPath().c_str(), err.c_str());
        return;
    }
    if (doc["format"].string() != "ash-sweep-manifest" ||
        doc["version"].asU64() != 1) {
        warn("sweep manifest '%s' has unknown format/version; "
             "ignoring",
             manifestPath().c_str());
        return;
    }
    for (const JsonValue &entry : doc["completed"].array()) {
        if (entry["job"].isString() && entry["file"].isString())
            _manifest[entry["job"].string()] =
                entry["file"].string();
    }
}

void
SweepRunner::saveManifestLocked()
{
    JsonWriter j;
    j.beginObject();
    j.kv("format", "ash-sweep-manifest");
    j.kv("version", uint64_t(1));
    j.key("completed").beginArray();
    for (const auto &[jobName, file] : _manifest) {
        j.beginObject();
        j.kv("job", jobName);
        j.kv("file", file);
        j.endObject();
    }
    j.endArray();
    j.endObject();

    const std::string path = manifestPath();
    const std::string tmp = uniqueTmpPath(path);
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
        warn("cannot write sweep manifest '%s'", tmp.c_str());
        return;
    }
    out << j.str() << "\n";
    out.flush();
    if (!out) {
        warn("short write on sweep manifest '%s'", tmp.c_str());
        return;
    }
    out.close();
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec)
        warn("cannot publish sweep manifest '%s': %s", path.c_str(),
             ec.message().c_str());
}

bool
SweepRunner::writeResultsFile(const std::string &path,
                              const JobContext &ctx)
{
    const std::string tmp = uniqueTmpPath(path);
    try {
        {
            std::ofstream out(tmp,
                              std::ios::binary | std::ios::trunc);
            if (!out) {
                warn("cannot write job results '%s'", tmp.c_str());
                return false;
            }
            ASH_FAULT_POINT("exec.persist.write");
            ckpt::SnapshotWriter w(out, "sweep-job",
                                   stableSeed(ctx.name()),
                                   kResultLayout);
            w.beginSection(kSecValues);
            writeKvs(w, ctx._records);
            writeKvs(w, ctx._published);
            w.endSection();
            w.beginSection(kSecStats);
            writeStatsList(w, ctx._stats);
            writeStatsList(w, ctx._pubStats);
            w.endSection();
            out.flush();
            if (!out) {
                warn("short write on job results '%s'", tmp.c_str());
                return false;
            }
        }
        fs::rename(tmp, path);
    } catch (const fs::filesystem_error &e) {
        warn("cannot write job results '%s': %s", path.c_str(),
             e.what());
        return false;
    } catch (const guard::InjectedFault &e) {
        warn("cannot write job results '%s': %s", path.c_str(),
             e.what());
        return false;
    }
    return true;
}

void
SweepRunner::readResultsFile(const std::string &path, JobContext &ctx)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw JobError("job results file '" + path + "' missing");
    try {
        ckpt::SnapshotReader r(in);
        r.require("sweep-job", stableSeed(ctx.name()), kResultLayout);
        r.section(kSecValues);
        readKvs(r, ctx._records);
        readKvs(r, ctx._published);
        r.endSection();
        r.section(kSecStats);
        readStatsList(r, ctx._stats);
        readStatsList(r, ctx._pubStats);
        r.endSection();
        r.expectEnd();
    } catch (...) {
        // Never leave half-loaded staging behind.
        ctx._records.clear();
        ctx._stats.clear();
        ctx._published.clear();
        ctx._pubStats.clear();
        throw;
    }
}

void
SweepRunner::persistJob(size_t i)
{
    // Best effort: a persistence failure costs a re-run on resume,
    // never the sweep itself.
    const JobContext &ctx = *_contexts[i];
    const std::string file =
        ckpt::CheckpointManager::sanitizeKey(ctx.name()) + ".ashjob";
    try {
        fs::create_directories(jobsDir());
    } catch (const fs::filesystem_error &e) {
        warn("cannot persist job '%s': %s", ctx.name().c_str(),
             e.what());
        return;
    }
    if (!writeResultsFile((fs::path(jobsDir()) / file).string(), ctx))
        return;
    std::lock_guard<std::mutex> lock(_manifestMutex);
    _manifest[ctx.name()] = "jobs/" + file;
    saveManifestLocked();
}

bool
SweepRunner::replayJob(size_t i)
{
    JobContext &ctx = *_contexts[i];
    auto it = _manifest.find(ctx.name());
    if (it == _manifest.end())
        return false;
    try {
        readResultsFile(
            (fs::path(_opts.checkpointDir) / it->second).string(),
            ctx);
    } catch (const Error &e) {
        warn("resume: results for job '%s' unusable (%s); re-running",
             ctx.name().c_str(), e.what());
        return false;
    }
    ctx._replayed = true;
    return true;
}

void
SweepRunner::executeJob(size_t i)
{
    JobContext &ctx = *_contexts[i];
    const int max_attempts = std::max(1, _opts.maxAttempts);
    const bool costed = prof::Profiler::enabled();
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        double wall0 = 0.0, cpu0 = 0.0;
        long rss0 = 0;
        if (costed) {
            wall0 = attemptWallSec();
            cpu0 = attemptThreadCpuSec();
            rss0 = processPeakRssKb();
        }
        ctx.beginAttempt(attempt);
        detail::setCurrentJob(&ctx);
        setLogJobId(static_cast<int64_t>(i));
        if (ctx._tracer)
            obs::Tracer::setThreadActive(ctx._tracer.get());

        // Per-attempt cancellation: the watchdog cancels the token at
        // the deadline and the engine run loops unwind at their next
        // pollCancel(). The token outlives the scope below so a late
        // watchdog fire after an ordinary throw hits dead state, not
        // freed state.
        guard::CancelToken token;
        std::string err;
        std::string errKind;
        FailureKind kind = FailureKind::Exception;
        bool retryable = true;
        {
            guard::CancelScope cancelScope(&token);
            std::optional<guard::WatchdogScope> deadline;
            if (_watchdog && _opts.jobDeadlineSec > 0) {
                deadline.emplace(
                    *_watchdog, &token,
                    std::chrono::milliseconds(static_cast<uint64_t>(
                        _opts.jobDeadlineSec * 1000.0)),
                    "job '" + ctx.name() + "'");
            }
            try {
                ASH_FAULT_POINT("job.body");
                ASH_FAULT_POINT("job.alloc");
                _jobs[i].body(ctx);
            } catch (const guard::CancelledError &e) {
                err = e.what();
                errKind = e.kind();
                kind = FailureKind::Timeout;
                // The deadline would simply expire again; retrying a
                // timeout doubles the stall for nothing.
                retryable = false;
            } catch (const std::bad_alloc &) {
                err = "out of memory (std::bad_alloc)";
                kind = FailureKind::Oom;
            } catch (const Error &e) {
                err = e.what();
                errKind = e.kind();
            } catch (const std::exception &e) {
                err = e.what();
            } catch (...) {
                err = "unknown exception";
            }
        }

        obs::Tracer::setThreadActive(nullptr);
        setLogJobId(-1);
        detail::setCurrentJob(nullptr);

        if (costed) {
            ctx._cost.wallSec += attemptWallSec() - wall0;
            ctx._cost.cpuSec += attemptThreadCpuSec() - cpu0;
            ctx._cost.rssDeltaKb += processPeakRssKb() - rss0;
            ctx._cost.attempts += 1;
            ctx._cost.attemptOutcomes.emplace_back(
                err.empty() ? "ok" : attemptOutcomeName(kind));
        }

        if (err.empty()) {
            if (_jobs[i].resumable && !_opts.checkpointDir.empty())
                persistJob(i);
            if (costed)
                prof::Profiler::instance().progressJobDone();
            return;
        }
        if (retryable && attempt + 1 < max_attempts) {
            uint64_t delayMs =
                retryBackoffMs(ctx.seed(), attempt,
                               _opts.backoffBaseMs,
                               _opts.backoffCapMs);
            warn("job '%s' attempt %d/%d failed: %s — retrying in "
                 "%llu ms",
                 ctx.name().c_str(), attempt + 1, max_attempts,
                 err.c_str(),
                 static_cast<unsigned long long>(delayMs));
            if (delayMs > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delayMs));
            continue;
        }
        auto failure = std::make_unique<JobFailure>();
        failure->job = ctx.name();
        failure->index = i;
        failure->attempts = retryable ? max_attempts : attempt + 1;
        failure->error = err;
        failure->kind = kind;
        failure->errorKind = errKind;
        _failureSlots[i] = std::move(failure);
        if (costed)
            prof::Profiler::instance().progressJobDone();
        return;
    }
}

void
SweepRunner::executeBatch(size_t b)
{
    PendingBatch &batch = _batches[b];
    const int max_attempts = std::max(1, _opts.maxAttempts);
    const bool costed = prof::Profiler::enabled();
    const size_t width = batch.members.size();

    // Lane slots still needing a successful attempt, ascending. Each
    // attempt runs exactly these lanes; lanes that complete drop out,
    // so a failed batch retries only its failing lanes.
    std::vector<size_t> active(width);
    for (size_t k = 0; k < width; ++k)
        active[k] = k;

    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        double wall0 = 0.0, cpu0 = 0.0;
        long rss0 = 0;
        if (costed) {
            wall0 = attemptWallSec();
            cpu0 = attemptThreadCpuSec();
            rss0 = processPeakRssKb();
        }

        BatchContext bctx;
        bctx._name = batch.name;
        bctx._width = width;
        for (size_t slot : active) {
            // Fresh staging only for the lanes re-running; completed
            // lanes keep the results they staged in earlier attempts.
            JobContext &ctx = *_contexts[batch.members[slot]];
            ctx.beginAttempt(attempt);
            bctx._lanes.push_back(&ctx);
            bctx._slots.push_back(slot);
        }
        bctx._laneErrors.assign(active.size(), std::string());

        // A batch is one schedulable unit: fault attribution, the
        // worker-log id, and the thread's tracer follow the primary
        // (first active) lane.
        JobContext &primary = *bctx._lanes.front();
        detail::setCurrentJob(&primary);
        setLogJobId(static_cast<int64_t>(batch.members[active[0]]));
        if (primary._tracer)
            obs::Tracer::setThreadActive(primary._tracer.get());

        // Same cancellation shape as executeJob: the token outlives
        // the watchdog scope so a late fire hits dead state.
        guard::CancelToken token;
        std::string err;
        std::string errKind;
        FailureKind kind = FailureKind::Exception;
        bool retryable = true;
        {
            guard::CancelScope cancelScope(&token);
            std::optional<guard::WatchdogScope> deadline;
            if (_watchdog && _opts.jobDeadlineSec > 0) {
                deadline.emplace(
                    *_watchdog, &token,
                    std::chrono::milliseconds(static_cast<uint64_t>(
                        _opts.jobDeadlineSec * 1000.0)),
                    "batch '" + batch.name + "'");
            }
            try {
                ASH_FAULT_POINT("lanes.batch");
                ASH_FAULT_POINT("job.body");
                batch.body(bctx);
            } catch (const guard::CancelledError &e) {
                err = e.what();
                errKind = e.kind();
                kind = FailureKind::Timeout;
                retryable = false;
            } catch (const std::bad_alloc &) {
                err = "out of memory (std::bad_alloc)";
                kind = FailureKind::Oom;
            } catch (const Error &e) {
                err = e.what();
                errKind = e.kind();
            } catch (const std::exception &e) {
                err = e.what();
            } catch (...) {
                err = "unknown exception";
            }
        }

        obs::Tracer::setThreadActive(nullptr);
        setLogJobId(-1);
        detail::setCurrentJob(nullptr);

        const size_t activeCount = bctx._lanes.size();
        if (costed) {
            // Shared attempt costs split evenly across active lanes:
            // the batch evaluated them together, so no lane owns the
            // wall time alone.
            const double wall =
                (attemptWallSec() - wall0) / activeCount;
            const double cpu =
                (attemptThreadCpuSec() - cpu0) / activeCount;
            const long rss = (processPeakRssKb() - rss0) /
                             static_cast<long>(activeCount);
            for (size_t k = 0; k < activeCount; ++k) {
                JobContext &ctx = *bctx._lanes[k];
                ctx._cost.wallSec += wall;
                ctx._cost.cpuSec += cpu;
                ctx._cost.rssDeltaKb += rss;
                ctx._cost.attempts += 1;
                const bool laneOk =
                    err.empty() && bctx._laneErrors[k].empty();
                ctx._cost.attemptOutcomes.emplace_back(
                    laneOk ? "ok" : attemptOutcomeName(kind));
            }
            prof::Profiler::instance().addBatchOccupancy(
                batch.name, activeCount, width);
        }

        // Attempt boundary: a body throw (or timeout) fails every
        // active lane; failLane() failures are per lane. Everything
        // else completed for good.
        std::vector<size_t> failing;
        std::vector<std::string> laneErr;
        for (size_t k = 0; k < activeCount; ++k) {
            std::string e = !err.empty() ? err : bctx._laneErrors[k];
            if (e.empty()) {
                if (costed)
                    prof::Profiler::instance().progressJobDone();
                continue;
            }
            failing.push_back(bctx._slots[k]);
            laneErr.push_back(std::move(e));
        }
        if (failing.empty())
            return;

        if (retryable && attempt + 1 < max_attempts) {
            uint64_t delayMs =
                retryBackoffMs(stableSeed(batch.name), attempt,
                               _opts.backoffBaseMs,
                               _opts.backoffCapMs);
            warn("batch '%s' attempt %d/%d: %zu of %zu lane(s) "
                 "failed: %s — retrying failing lanes in %llu ms",
                 batch.name.c_str(), attempt + 1, max_attempts,
                 failing.size(), activeCount, laneErr.front().c_str(),
                 static_cast<unsigned long long>(delayMs));
            if (delayMs > 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delayMs));
            active = std::move(failing);
            continue;
        }

        // Retry budget exhausted (or non-retryable): each still-
        // failing lane becomes its own structured failure, tagged
        // with its batch and lane slot.
        for (size_t j = 0; j < failing.size(); ++j) {
            const size_t slot = failing[j];
            const size_t jobIdx = batch.members[slot];
            auto failure = std::make_unique<JobFailure>();
            failure->job = _contexts[jobIdx]->name();
            failure->index = jobIdx;
            failure->attempts =
                retryable ? max_attempts : attempt + 1;
            failure->error = laneErr[j];
            failure->kind = kind;
            failure->errorKind = errKind;
            failure->batch = batch.name;
            failure->lane = static_cast<int>(slot);
            _failureSlots[jobIdx] = std::move(failure);
            if (costed)
                prof::Profiler::instance().progressJobDone();
        }
        return;
    }
}

void
SweepRunner::runIsolated(const std::vector<char> &skip)
{
    using Clock = std::chrono::steady_clock;

    // Result/error transport directory. Files are written by children
    // with tmp + rename, read and deleted by the parent.
    const bool tempStaging = _opts.checkpointDir.empty();
    std::string dir =
        tempStaging
            ? (fs::temp_directory_path() /
               ("ash-isolate-" + std::to_string(getpid())))
                  .string()
            : (fs::path(_opts.checkpointDir) / "isolate").string();
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("isolate: cannot create staging dir '%s': %s; running "
             "jobs in-process",
             dir.c_str(), ec.message().c_str());
        for (size_t i = 0; i < _jobs.size(); ++i)
            if (!skip[i])
                executeJob(i);
        return;
    }

    const int max_attempts = std::max(1, _opts.maxAttempts);
    const auto deadlineMs = static_cast<uint64_t>(
        _opts.jobDeadlineSec * 1000.0);

    guard::IsolateLimits limits;
    limits.memMb = _opts.isolateRssMb;
    if (_opts.jobDeadlineSec > 0) {
        // CPU-time backstop behind the wall-clock kill: catches a
        // child that spins even if the parent itself is wedged.
        limits.cpuSeconds = static_cast<uint64_t>(
            _opts.jobDeadlineSec * 2.0) + 1;
    }

    struct Pending
    {
        size_t job;
        int attempt;
        Clock::time_point notBefore;
    };
    struct Running
    {
        size_t job;
        int attempt;
        pid_t pid;
        Clock::time_point started;
        Clock::time_point killAt;
        bool haveDeadline;
        bool killedByUs;
        std::string resultPath;
        std::string errPath;
    };

    std::deque<Pending> queue;
    for (size_t i = 0; i < _jobs.size(); ++i)
        if (!skip[i])
            queue.push_back({i, 0, Clock::now()});
    std::vector<Running> running;
    const size_t slots = std::max<size_t>(
        1, std::min<size_t>(resolvedJobs(),
                            std::max<size_t>(_jobs.size(), 1)));

    // One child attempt: runs the body, encodes the outcome in the
    // exit code, ships results/diagnostics through files.
    auto childBody = [this](size_t i, int attempt,
                            const std::string &resultPath,
                            const std::string &errPath) -> int {
        JobContext &ctx = *_contexts[i];
        ctx.beginAttempt(attempt);
        detail::setCurrentJob(&ctx);
        setLogJobId(static_cast<int64_t>(i));
        std::string err;
        std::string errKind;
        int code = 0;
        try {
            ASH_FAULT_POINT("job.body");
            ASH_FAULT_POINT("job.alloc");
            _jobs[i].body(ctx);
        } catch (const std::bad_alloc &) {
            err = "out of memory (std::bad_alloc)";
            errKind = "oom";
            code = 4;
        } catch (const Error &e) {
            err = e.what();
            errKind = e.kind();
            code = 3;
        } catch (const std::exception &e) {
            err = e.what();
            code = 3;
        } catch (...) {
            err = "unknown exception";
            code = 3;
        }
        if (err.empty() && !writeResultsFile(resultPath, ctx)) {
            err = "cannot write job results file";
            errKind = "job";
            code = 3;
        }
        if (!err.empty()) {
            std::ofstream out(errPath,
                              std::ios::binary | std::ios::trunc);
            out << errKind << "\n" << err;
        }
        return code;
    };

    auto recordFailure = [&](size_t i, int attemptsUsed,
                             FailureKind kind, std::string err,
                             std::string errKind, int sig, int code) {
        auto failure = std::make_unique<JobFailure>();
        failure->job = _contexts[i]->name();
        failure->index = i;
        failure->attempts = attemptsUsed;
        failure->error = std::move(err);
        failure->kind = kind;
        failure->errorKind = std::move(errKind);
        failure->exitSignal = sig;
        failure->exitCode = code;
        _failureSlots[i] = std::move(failure);
    };

    // Retry (with deterministic backoff) or record the failure.
    // Parent-side attempt bill: wall time from fork to reap. The
    // child's CPU/RSS die with it, so the isolate bill is wall-only.
    auto chargeAttempt = [&](const Running &r, const char *outcome) {
        if (!prof::Profiler::enabled())
            return;
        JobContext &ctx = *_contexts[r.job];
        ctx._cost.wallSec +=
            std::chrono::duration<double>(Clock::now() - r.started)
                .count();
        ctx._cost.attempts += 1;
        ctx._cost.attemptOutcomes.emplace_back(outcome);
    };

    auto finishAttempt = [&](const Running &r, bool retryable,
                             FailureKind kind, std::string err,
                             std::string errKind, int sig, int code) {
        chargeAttempt(r, attemptOutcomeName(kind));
        if (retryable && r.attempt + 1 < max_attempts) {
            uint64_t delayMs = retryBackoffMs(
                stableSeed(_jobs[r.job].name), r.attempt,
                _opts.backoffBaseMs, _opts.backoffCapMs);
            warn("job '%s' attempt %d/%d failed: %s — retrying in "
                 "%llu ms",
                 _jobs[r.job].name.c_str(), r.attempt + 1,
                 max_attempts, err.c_str(),
                 static_cast<unsigned long long>(delayMs));
            queue.push_back(
                {r.job, r.attempt + 1,
                 Clock::now() + std::chrono::milliseconds(delayMs)});
            return;
        }
        recordFailure(r.job,
                      retryable ? max_attempts : r.attempt + 1, kind,
                      std::move(err), std::move(errKind), sig, code);
        if (prof::Profiler::enabled())
            prof::Profiler::instance().progressJobDone();
    };

    auto reap = [&](const Running &r, const guard::ChildStatus &st) {
        if (r.killedByUs) {
            finishAttempt(
                r, /*retryable=*/false, FailureKind::Timeout,
                "deadline of " + std::to_string(deadlineMs) +
                    " ms exceeded; child killed",
                "cancel", st.exited ? 0 : st.termSignal,
                st.exited ? st.exitCode : 0);
        } else if (!st.exited) {
            if (st.termSignal == SIGXCPU) {
                finishAttempt(r, /*retryable=*/false,
                              FailureKind::Timeout,
                              "CPU limit exceeded (SIGXCPU)", "",
                              st.termSignal, 0);
            } else {
                finishAttempt(r, /*retryable=*/true,
                              FailureKind::Crash,
                              "child crashed: " +
                                  guard::describeChildExit(st),
                              "", st.termSignal, 0);
            }
        } else if (st.exitCode == 0) {
            JobContext &ctx = *_contexts[r.job];
            try {
                readResultsFile(r.resultPath, ctx);
                if (_jobs[r.job].resumable &&
                    !_opts.checkpointDir.empty())
                    persistJob(r.job);
                chargeAttempt(r, "ok");
                if (prof::Profiler::enabled())
                    prof::Profiler::instance().progressJobDone();
            } catch (const Error &e) {
                finishAttempt(r, /*retryable=*/true,
                              FailureKind::Exception,
                              std::string("job results unusable: ") +
                                  e.what(),
                              e.kind(), 0, 0);
            }
        } else if (st.exitCode == 42) {
            // The injected-kill convention (also ASH_CKPT_DIE_AFTER).
            finishAttempt(r, /*retryable=*/true, FailureKind::Crash,
                          "child killed (exit code 42)", "fault", 0,
                          42);
        } else {
            // Structured failure: the child left kind + message in
            // its error file.
            std::string errKind;
            std::string err = "child failed: " +
                              guard::describeChildExit(st);
            std::ifstream in(r.errPath, std::ios::binary);
            if (in) {
                std::getline(in, errKind);
                std::ostringstream rest;
                rest << in.rdbuf();
                if (!rest.str().empty())
                    err = rest.str();
            }
            finishAttempt(r, /*retryable=*/true,
                          st.exitCode == 4 ? FailureKind::Oom
                                           : FailureKind::Exception,
                          std::move(err), std::move(errKind), 0,
                          st.exitCode);
        }
        fs::remove(r.resultPath, ec);
        fs::remove(r.errPath, ec);
    };

    while (!queue.empty() || !running.empty()) {
        // Drain gate: a shutdown request stops further launches;
        // children already forked finish and are reaped normally.
        if (_opts.drainOnShutdown && shutdownRequested() &&
            !queue.empty()) {
            for (const Pending &p : queue) {
                if (p.attempt == 0)
                    ++_interrupted;
                else
                    recordFailure(p.job, p.attempt,
                                  FailureKind::Exception,
                                  "shutdown drain: retry abandoned",
                                  "", 0, 0);
            }
            queue.clear();
        }

        // Launch as many eligible attempts as slots allow.
        auto now = Clock::now();
        for (auto it = queue.begin();
             it != queue.end() && running.size() < slots;) {
            if (it->notBefore > now) {
                ++it;
                continue;
            }
            Pending p = *it;
            it = queue.erase(it);
            Running r;
            r.job = p.job;
            r.attempt = p.attempt;
            r.resultPath = dir + "/job-" + std::to_string(p.job) +
                           "-a" + std::to_string(p.attempt) +
                           ".ashjob";
            r.errPath = dir + "/job-" + std::to_string(p.job) + "-a" +
                        std::to_string(p.attempt) + ".err";
            fs::remove(r.resultPath, ec);
            fs::remove(r.errPath, ec);
            r.started = now;
            r.haveDeadline = deadlineMs > 0;
            r.killAt = now + std::chrono::milliseconds(deadlineMs);
            r.killedByUs = false;
            // The body lambda only ever executes in the forked child
            // (which owns a snapshot of this stack); the parent just
            // gets the pid back.
            const std::string resultPath = r.resultPath;
            const std::string errPath = r.errPath;
            r.pid = guard::spawnIsolated(
                limits, [&childBody, p, resultPath, errPath]() {
                    return childBody(p.job, p.attempt, resultPath,
                                     errPath);
                });
            running.push_back(std::move(r));
        }

        // Reap finished children; enforce deadlines on live ones.
        now = Clock::now();
        for (size_t r = 0; r < running.size();) {
            guard::ChildStatus st;
            if (guard::pollChild(running[r].pid, st)) {
                Running done = std::move(running[r]);
                running.erase(running.begin() + r);
                reap(done, st);
                continue;
            }
            if (running[r].haveDeadline && !running[r].killedByUs &&
                now >= running[r].killAt) {
                warn("job '%s' exceeded its %llu ms deadline; "
                     "killing child %d",
                     _jobs[running[r].job].name.c_str(),
                     static_cast<unsigned long long>(deadlineMs),
                     static_cast<int>(running[r].pid));
                guard::killChild(running[r].pid);
                running[r].killedByUs = true;
            }
            ++r;
        }
        if (!running.empty() || !queue.empty())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
    }

    if (tempStaging)
        fs::remove_all(dir, ec);
}

const std::vector<JobFailure> &
SweepRunner::run()
{
    ASH_ASSERT(!_ran, "SweepRunner::run called twice");
    _ran = true;

    _contexts.reserve(_jobs.size());
    for (size_t i = 0; i < _jobs.size(); ++i)
        _contexts.push_back(
            std::make_unique<JobContext>(_jobs[i].name, i));
    _failureSlots.resize(_jobs.size());

    // Resume: load the manifest whenever persistence is on (so a
    // repeated sweep extends it rather than clobbering it), and when
    // asked, skip manifest-completed resumable jobs by replaying
    // their persisted output into their contexts up front.
    std::vector<char> skip(_jobs.size(), 0);
    if (!_opts.checkpointDir.empty())
        loadManifest();
    if (_opts.resume && !_manifest.empty()) {
        if (obs::Tracer::enabled()) {
            inform("resume: event tracing is on; re-running all "
                   "jobs (traces cannot be replayed)");
        } else {
            for (size_t i = 0; i < _jobs.size(); ++i) {
                if (_jobs[i].resumable && replayJob(i)) {
                    skip[i] = 1;
                    ++_skipped;
                }
            }
            if (_skipped != 0)
                inform("resume: skipping %zu of %zu completed "
                       "job(s)",
                       _skipped, _jobs.size());
        }
    }

    // Progress heartbeat: replayed jobs count as done immediately, so
    // the heartbeat's N/total reflects work remaining, not sweep size.
    const bool costed = prof::Profiler::enabled();
    if (costed) {
        prof::Profiler::instance().progressBegin(_jobs.size());
        for (size_t i = 0; i < _jobs.size(); ++i)
            if (skip[i])
                prof::Profiler::instance().progressJobDone();
    }

    bool isolate = _opts.isolate;
    if (isolate && obs::Tracer::enabled()) {
        // Mirrors the resume/tracing rule: a child's trace ring dies
        // with the child, so tracing wins and isolation is skipped.
        inform("isolate: event tracing is on; running jobs "
               "in-process");
        isolate = false;
    }

    if (isolate) {
        // Lane batches always run in-process: a batch is one address
        // space evaluating W scenarios in lockstep, so forking per
        // lane would undo the batching. No in-process watchdog exists
        // on this path, so batch deadlines are not enforced here —
        // solo jobs still get the child-kill deadline.
        if (!_batches.empty()) {
            std::vector<char> skipIso = skip;
            for (size_t b = 0; b < _batches.size(); ++b) {
                if (_opts.drainOnShutdown && shutdownRequested()) {
                    _interrupted += _batches[b].members.size();
                    continue;
                }
                executeBatch(b);
            }
            for (const PendingBatch &batch : _batches)
                for (size_t m : batch.members)
                    skipIso[m] = 1;
            runIsolated(skipIso);
        } else {
            runIsolated(skip);
        }
    } else {
        // In-process deadlines: one watchdog thread serves every
        // worker; its destructor (end of this scope) joins after the
        // pool drains, so armed entries never outlive their tokens.
        std::optional<guard::Watchdog> watchdog;
        if (_opts.jobDeadlineSec > 0) {
            watchdog.emplace();
            _watchdog = &*watchdog;
        }

        // Drain gate: checked immediately before each job body would
        // start, so a SIGINT/SIGTERM lets in-flight jobs finish (and
        // persist) while unstarted ones are skipped and counted.
        std::atomic<size_t> drained{0};
        const bool drainable = _opts.drainOnShutdown;
        auto runOrDrain = [this, drainable, &drained](size_t i) {
            if (drainable && shutdownRequested()) {
                drained.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            executeJob(i);
        };
        // A batch is one schedulable unit covering all its member
        // jobs; a drained batch counts every member as interrupted.
        auto runBatchOrDrain = [this, drainable, &drained](size_t b) {
            if (drainable && shutdownRequested()) {
                drained.fetch_add(_batches[b].members.size(),
                                  std::memory_order_relaxed);
                return;
            }
            executeBatch(b);
        };
        // Each batch is submitted once, at its first member's
        // submission position, so batch scheduling order tracks add
        // order just like solo jobs.
        auto firstMemberBatch = [this](size_t i) -> int {
            const int b = _jobs[i].batch;
            if (b < 0)
                return -1;
            return i ==
                           _batches[static_cast<size_t>(b)]
                               .members.front()
                       ? b
                       : -2;  // batch member, not the submit point
        };

        const unsigned threads = std::min<size_t>(
            resolvedJobs(), std::max<size_t>(_jobs.size(), 1));
        if (threads <= 1) {
            // Single-job mode runs inline on the caller's thread —
            // same JobContext plumbing, no thread handoff, so
            // `--jobs 1` is also the zero-risk fallback path.
            for (size_t i = 0; i < _jobs.size(); ++i) {
                if (skip[i])
                    continue;
                const int b = firstMemberBatch(i);
                if (b >= 0)
                    runBatchOrDrain(static_cast<size_t>(b));
                else if (b == -1)
                    runOrDrain(i);
            }
        } else {
            ThreadPool pool(threads);
            for (size_t i = 0; i < _jobs.size(); ++i) {
                if (skip[i])
                    continue;
                const int b = firstMemberBatch(i);
                if (b >= 0) {
                    const size_t batchIdx = static_cast<size_t>(b);
                    pool.submit([&runBatchOrDrain, batchIdx] {
                        runBatchOrDrain(batchIdx);
                    });
                } else if (b == -1) {
                    pool.submit([&runOrDrain, i] { runOrDrain(i); });
                }
            }
            pool.wait();
        }
        _interrupted = drained.load(std::memory_order_relaxed);
        _watchdog = nullptr;
    }

    if (costed)
        prof::Profiler::instance().progressEnd();

    // Merge barrier: apply every job's staged output in submission
    // order, so the report (and its JSON) is independent of both the
    // completion order and the job count.
    ASH_PROF_ZONE("merge");
    obs::Report &report = obs::Report::global();
    for (size_t i = 0; i < _contexts.size(); ++i) {
        JobContext &ctx = *_contexts[i];
        for (const auto &[key, value] : ctx._records)
            report.record(key, value);
        for (const auto &[scope, stats] : ctx._stats)
            report.recordStats(scope, stats);
        if (ctx._tracer)
            obs::Tracer::process().mergeFrom(*ctx._tracer);
        if (_failureSlots[i])
            _failures.push_back(*_failureSlots[i]);
        if (costed) {
            // Submission order, so the prof report's job list is
            // deterministic in content and order.
            prof::JobCost cost = ctx._cost;
            cost.job = ctx.name();
            cost.failed = _failureSlots[i] != nullptr;
            cost.replayed = ctx._replayed;
            if (_jobs[i].batch >= 0) {
                const PendingBatch &batch =
                    _batches[static_cast<size_t>(_jobs[i].batch)];
                cost.batch = batch.name;
                cost.lane = _jobs[i].lane;
                cost.laneWidth =
                    static_cast<int>(batch.members.size());
            }
            prof::Profiler::instance().addJobCost(cost);
        }
    }

    if (_interrupted != 0) {
        warn("ash_exec sweep: shutdown drain — %zu of %zu job(s) "
             "never started; completed jobs were merged (and "
             "persisted when checkpointing is on)",
             _interrupted, _jobs.size());
        obs::Report::global().setInterrupted(true);
    }

    if (!_failures.empty()) {
        warn("ash_exec sweep: %zu of %zu jobs FAILED:",
             _failures.size(), _jobs.size());
        for (const JobFailure &f : _failures)
            warn("  job '%s' (#%zu) failed after %d attempt%s "
                 "[%s%s%s]: %s",
                 f.job.c_str(), f.index, f.attempts,
                 f.attempts == 1 ? "" : "s", failureKindName(f.kind),
                 f.errorKind.empty() ? "" : "/",
                 f.errorKind.c_str(), f.error.c_str());
    }
    return _failures;
}

} // namespace ash::exec
