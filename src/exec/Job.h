/**
 * @file
 * The ash_exec job model. A job is one independent unit of a sweep —
 * typically one (design, config, system) simulation — identified by a
 * stable, human-readable key such as "fig11/gcd/t16". Everything a
 * job needs for deterministic parallel execution hangs off its
 * JobContext:
 *
 *  - a per-job RNG seeded from the key (stableSeed), so random
 *    behavior depends only on WHICH job runs, never on which thread
 *    runs it or in what order;
 *  - per-job staging for bench results (record / recordStats) and —
 *    when event tracing is enabled — a private obs::Tracer, all merged
 *    into the process-wide report in SUBMISSION order at the sweep
 *    barrier, so exported output is byte-identical at any job count;
 *  - the attempt counter for SweepRunner's bounded retry.
 *
 * JobContext::current() exposes the running job to shared substrate
 * (bench::record routes through it; Logging prefixes worker lines
 * with the job id).
 */

#ifndef ASH_EXEC_JOB_H
#define ASH_EXEC_JOB_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/Error.h"
#include "common/Random.h"
#include "common/Stats.h"
#include "prof/Prof.h"

namespace ash::obs {
class Tracer;
}

namespace ash::exec {

/** FNV-1a hash of @p name; the deterministic per-job seed root. */
uint64_t stableSeed(const std::string &name);

/** Job-infrastructure failure (result transport, child plumbing). */
class JobError : public Error
{
  public:
    explicit JobError(const std::string &what) : Error("job", what) {}
};

/** How a failed job died (the exit cause in structured reports). */
enum class FailureKind : uint8_t
{
    Exception,  ///< Job body threw (incl. ash::Error diagnostics).
    Timeout,    ///< Wall-clock deadline: watchdog cancel / isolate kill.
    Crash,      ///< Isolate child died on a signal or injected kill.
    Oom,        ///< Allocation failure (bad_alloc / RSS limit).
};

/** Stable lowercase name of @p kind ("exception", "timeout", ...). */
const char *failureKindName(FailureKind kind);

/** One job that exhausted its retry budget. */
struct JobFailure
{
    std::string job;     ///< Job key.
    size_t index = 0;    ///< Submission index within the sweep.
    int attempts = 0;    ///< Attempts consumed (<= maxAttempts).
    std::string error;   ///< what() of the last exception / exit cause.

    FailureKind kind = FailureKind::Exception;  ///< Exit cause class.
    /** ash::Error::kind() of the last error ("parse", "snapshot",
     *  "fault", ...); empty for non-ash exceptions. */
    std::string errorKind;
    int exitSignal = 0;  ///< Isolate mode: terminating signal, if any.
    int exitCode = 0;    ///< Isolate mode: child exit code, if exited.

    /** Lane batching: the batch this job failed inside as one lane
     *  (SweepRunner::addBatch), or empty for a solo job. A failed
     *  batch attempt retries only its failing lanes, so this failure
     *  is that lane's own — not the whole batch's. */
    std::string batch;
    int lane = -1;       ///< Lane slot within the batch.
};

/** Per-job execution state; see file header. */
class JobContext
{
  public:
    // Out of line: _tracer's pointee type is incomplete here.
    JobContext(std::string name, size_t index);
    ~JobContext();

    const std::string &name() const { return _name; }
    size_t index() const { return _index; }

    /** 0-based attempt; > 0 only on SweepRunner retries. */
    int attempt() const { return _attempt; }

    /** Stable seed root: depends only on the job key. */
    uint64_t seed() const { return _seed; }

    /**
     * Per-job RNG. Reseeded at the start of every attempt from
     * seed() and the attempt number, so a retry replays a
     * deterministic (but distinct) stream.
     */
    Rng &rng() { return _rng; }

    /** Stage one named result; applied in submission order. */
    void
    record(const std::string &key, double value)
    {
        _records.emplace_back(key, value);
    }

    /** Stage a StatSet merge under @p scope. */
    void
    recordStats(const std::string &scope, const StatSet &stats)
    {
        _stats.emplace_back(scope, stats);
    }

    /**
     * Stage one published value: a result the bench reads back from
     * the context AFTER the sweep (table cells, per-system speeds).
     * Unlike record(), published values never reach the report — but
     * like records they are persisted for resumable jobs, so a job
     * skipped on --resume replays them bit-exactly.
     */
    void
    publish(const std::string &key, double value)
    {
        _published.emplace_back(key, value);
    }

    /** Stage a published StatSet under @p key (see publish()). */
    void
    publishStats(const std::string &key, const StatSet &stats)
    {
        _pubStats.emplace_back(key, stats);
    }

    /** Published values in publish() order; read after the sweep. */
    const std::vector<std::pair<std::string, double>> &
    published() const
    {
        return _published;
    }

    /** Published value by key (last wins), or @p def when absent. */
    double publishedValue(const std::string &key,
                          double def = 0.0) const;

    /** Published StatSet by key (last wins), or nullptr. */
    const StatSet *publishedStats(const std::string &key) const;

    /**
     * 0-based index of the next checkpointed engine run inside this
     * job body, reset each attempt. Keys engine snapshot directories
     * ("<job>#r<n>"), so a resumed process — whose job body replays
     * the same deterministic sequence of engine runs — finds each
     * run's images under the same key as the crashed process left
     * them.
     */
    uint64_t nextEngineRun() { return _engineRuns++; }

    /** True when resume skipped this job and replayed its output. */
    bool replayed() const { return _replayed; }

    /**
     * The job running on this thread, or nullptr outside a sweep.
     * Worker-thread substrate (bench::record, Logging) routes
     * through this.
     */
    static JobContext *current();

  private:
    friend class SweepRunner;

    /** Reset staging + RNG for attempt @p attempt. */
    void beginAttempt(int attempt);

    std::string _name;
    size_t _index;
    uint64_t _seed;
    Rng _rng;
    int _attempt = 0;
    uint64_t _engineRuns = 0;
    bool _replayed = false;
    std::vector<std::pair<std::string, double>> _records;
    std::vector<std::pair<std::string, StatSet>> _stats;
    std::vector<std::pair<std::string, double>> _published;
    std::vector<std::pair<std::string, StatSet>> _pubStats;
    std::unique_ptr<obs::Tracer> _tracer;   ///< Only while tracing.

    /** Resource bill staged across attempts; only filled while the
     *  profiler is armed, merged at the sweep barrier. Survives
     *  beginAttempt() — the bill spans every attempt of the job. */
    prof::JobCost _cost;
};

namespace detail {

/** Internal: SweepRunner installs/clears the thread's job. */
void setCurrentJob(JobContext *ctx);

} // namespace detail

} // namespace ash::exec

#endif // ASH_EXEC_JOB_H
