/**
 * @file
 * Process-wide graceful-shutdown flag shared by the batch benches and
 * the ash_serve daemon. A SIGINT/SIGTERM (or an explicit
 * requestShutdown()) flips one async-signal-safe flag; long-running
 * dispatch loops poll shutdownRequested() at their scheduling points
 * and DRAIN instead of dying: exec::SweepRunner stops launching
 * unstarted jobs but finishes (and persists) in-flight ones, the
 * bench harness still writes its partial --stats-json (stamped
 * "interrupted": true), and serve::Server stops accepting work but
 * answers everything already admitted.
 *
 * The flag is sticky and one-way — there is deliberately no reset:
 * a process that has been asked to stop only ever winds down. A
 * second signal restores the default disposition, so a stuck drain
 * can still be killed the ordinary way.
 *
 * Header-only: the flag must be pollable from exec and serve without
 * adding link edges, mirroring guard/Cancel.h.
 */

#ifndef ASH_COMMON_SHUTDOWN_H
#define ASH_COMMON_SHUTDOWN_H

#include <atomic>
#include <csignal>

namespace ash {

namespace detail {

inline std::atomic<bool> &
shutdownFlag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

/** Signal handler: set the flag, then re-arm default disposition so
 *  a second signal terminates a wedged drain immediately. */
inline void
shutdownSignalHandler(int sig)
{
    shutdownFlag().store(true, std::memory_order_release);
    std::signal(sig, SIG_DFL);
}

} // namespace detail

/** True once a drain has been requested (signal or explicit call). */
inline bool
shutdownRequested()
{
    return detail::shutdownFlag().load(std::memory_order_acquire);
}

/** Request a drain programmatically (tests, the daemon's admin op). */
inline void
requestShutdown()
{
    detail::shutdownFlag().store(true, std::memory_order_release);
}

/**
 * Clear the flag. ONLY for tests, which exercise interrupted sweeps
 * and drains in one process; production code never un-requests a
 * shutdown.
 */
inline void
resetShutdownForTests()
{
    detail::shutdownFlag().store(false, std::memory_order_release);
}

/**
 * Route SIGINT and SIGTERM into the drain flag. Installed by
 * bench::init() and the ash_served main; idempotent.
 */
inline void
installShutdownSignalHandlers()
{
    std::signal(SIGINT, &detail::shutdownSignalHandler);
    std::signal(SIGTERM, &detail::shutdownSignalHandler);
}

} // namespace ash

#endif // ASH_COMMON_SHUTDOWN_H
