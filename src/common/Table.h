/**
 * @file
 * Plain-text table rendering for the benchmark harnesses. Each bench
 * binary regenerates one of the paper's tables or figure data series
 * and prints it through this class so output stays aligned and uniform.
 */

#ifndef ASH_COMMON_TABLE_H
#define ASH_COMMON_TABLE_H

#include <string>
#include <vector>

namespace ash {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render with single-space-padded, right-aligned numeric columns. */
    std::string toString() const;

    /** Convenience numeric formatting helpers. */
    static std::string num(double v, int precision = 1);
    static std::string integer(uint64_t v);
    /** Render v with an 'x' suffix, e.g. "32.4x". */
    static std::string speedup(double v, int precision = 1);
    /** Render a fraction as a percentage, e.g. "17.4%". */
    static std::string percent(double fraction, int precision = 1);
    /** Human-readable byte count (KB / MB). */
    static std::string bytes(uint64_t n);

  private:
    std::vector<std::string> _header;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace ash

#endif // ASH_COMMON_TABLE_H
