#include "common/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ash {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------

void
JsonWriter::indent()
{
    if (!_pretty)
        return;
    _out << '\n';
    for (size_t i = 0; i < _stack.size(); ++i)
        _out << "  ";
}

void
JsonWriter::separate()
{
    if (_pendingKey) {
        _pendingKey = false;
        return;   // Value completes the "key": prefix already emitted.
    }
    if (_stack.empty())
        return;
    if (_stack.back().any)
        _out << ',';
    _stack.back().any = true;
    indent();
}

JsonWriter &
JsonWriter::beginObject()
{
    separate();
    _out << '{';
    _stack.push_back({'o'});
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    bool any = !_stack.empty() && _stack.back().any;
    _stack.pop_back();
    if (any)
        indent();
    _out << '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    separate();
    _out << '[';
    _stack.push_back({'a'});
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    bool any = !_stack.empty() && _stack.back().any;
    _stack.pop_back();
    if (any)
        indent();
    _out << ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    separate();
    _out << '"' << jsonEscape(k) << "\": ";
    _pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    separate();
    _out << '"' << jsonEscape(v) << '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    separate();
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; emit null so consumers see "absent".
        _out << "null";
        return *this;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    _out << buf;
    return *this;
}

JsonWriter &
JsonWriter::value(uint64_t v)
{
    separate();
    _out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(int64_t v)
{
    separate();
    _out << v;
    return *this;
}

JsonWriter &
JsonWriter::value(bool v)
{
    separate();
    _out << (v ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    separate();
    _out << "null";
    return *this;
}

// ---------------------------------------------------------------------
// Validator
// ---------------------------------------------------------------------

namespace {

/** Recursive-descent JSON checker over a raw character range. */
struct JsonChecker
{
    const char *p;
    const char *end;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " at offset %zd",
                      static_cast<ptrdiff_t>(p - begin));
        err = msg + buf;
        return false;
    }

    const char *begin;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (static_cast<size_t>(end - p) < n ||
            std::string(p, p + n) != word)
            return fail(std::string("bad literal, expected ") + word);
        p += n;
        return true;
    }

    bool
    string()
    {
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        while (p < end && *p != '"') {
            if (static_cast<unsigned char>(*p) < 0x20)
                return fail("raw control character in string");
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("truncated escape");
                switch (*p) {
                  case '"': case '\\': case '/': case 'b': case 'f':
                  case 'n': case 'r': case 't':
                    ++p;
                    break;
                  case 'u':
                    ++p;
                    for (int i = 0; i < 4; ++i, ++p) {
                        if (p >= end || !std::isxdigit(
                                static_cast<unsigned char>(*p)))
                            return fail("bad \\u escape");
                    }
                    break;
                  default:
                    return fail("bad escape character");
                }
            } else {
                ++p;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;   // Closing quote.
        return true;
    }

    bool
    number()
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        const char *digits = p;
        while (p < end && std::isdigit(static_cast<unsigned char>(*p)))
            ++p;
        if (p == start || (*start == '-' && p == start + 1))
            return fail("expected number");
        if (p - digits > 1 && *digits == '0')
            return fail("leading zero in number");
        if (p < end && *p == '.') {
            ++p;
            if (p >= end ||
                !std::isdigit(static_cast<unsigned char>(*p)))
                return fail("bad fraction");
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            if (p >= end ||
                !std::isdigit(static_cast<unsigned char>(*p)))
                return fail("bad exponent");
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        return true;
    }

    bool
    value(int depth)
    {
        if (depth > 256)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                if (!value(depth + 1))
                    return false;
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"':
            return string();
          case 't':
            return literal("true");
          case 'f':
            return literal("false");
          case 'n':
            return literal("null");
          default:
            return number();
        }
    }
};

} // namespace

bool
jsonValid(const std::string &text, std::string *err)
{
    JsonChecker c{text.data(), text.data() + text.size(), {},
                  text.data()};
    if (!c.value(0)) {
        if (err)
            *err = c.err;
        return false;
    }
    c.skipWs();
    if (c.p != c.end) {
        if (err)
            *err = "trailing garbage after JSON value";
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// JsonValue / jsonParse
// ---------------------------------------------------------------------

namespace {
const JsonValue kNullValue;
} // namespace

const JsonValue &
JsonValue::operator[](const std::string &key) const
{
    if (_kind == Kind::Object) {
        auto it = _object.find(key);
        if (it != _object.end())
            return it->second;
    }
    return kNullValue;
}

const JsonValue &
JsonValue::at(size_t i) const
{
    if (_kind == Kind::Array && i < _array.size())
        return _array[i];
    return kNullValue;
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j._kind = Kind::Bool;
    j._bool = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v)
{
    JsonValue j;
    j._kind = Kind::Number;
    j._number = v;
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j._kind = Kind::String;
    j._string = std::move(v);
    return j;
}

JsonValue
JsonValue::makeArray()
{
    JsonValue j;
    j._kind = Kind::Array;
    return j;
}

JsonValue
JsonValue::makeObject()
{
    JsonValue j;
    j._kind = Kind::Object;
    return j;
}

namespace {

/** Recursive-descent parser; grammar identical to JsonChecker. */
struct JsonParser
{
    const char *p;
    const char *end;
    const char *begin;
    std::string err;

    bool
    fail(const std::string &msg)
    {
        char buf[64];
        std::snprintf(buf, sizeof(buf), " at offset %zd",
                      static_cast<ptrdiff_t>(p - begin));
        err = msg + buf;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::string(word).size();
        if (static_cast<size_t>(end - p) < n ||
            std::string(p, p + n) != word)
            return fail(std::string("bad literal, expected ") + word);
        p += n;
        return true;
    }

    static void
    appendUtf8(std::string &out, uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    bool
    hex4(uint32_t &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i, ++p) {
            if (p >= end ||
                !std::isxdigit(static_cast<unsigned char>(*p)))
                return fail("bad \\u escape");
            char c = *p;
            uint32_t digit = c <= '9'   ? uint32_t(c - '0')
                             : c <= 'F' ? uint32_t(c - 'A' + 10)
                                        : uint32_t(c - 'a' + 10);
            out = out * 16 + digit;
        }
        return true;
    }

    bool
    string(std::string &out)
    {
        out.clear();
        if (p >= end || *p != '"')
            return fail("expected string");
        ++p;
        while (p < end && *p != '"') {
            if (static_cast<unsigned char>(*p) < 0x20)
                return fail("raw control character in string");
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return fail("truncated escape");
                switch (*p) {
                  case '"': out += '"'; ++p; break;
                  case '\\': out += '\\'; ++p; break;
                  case '/': out += '/'; ++p; break;
                  case 'b': out += '\b'; ++p; break;
                  case 'f': out += '\f'; ++p; break;
                  case 'n': out += '\n'; ++p; break;
                  case 'r': out += '\r'; ++p; break;
                  case 't': out += '\t'; ++p; break;
                  case 'u': {
                    ++p;
                    uint32_t cp;
                    if (!hex4(cp))
                        return false;
                    // Surrogate pair: combine when a low surrogate
                    // immediately follows a high one.
                    if (cp >= 0xD800 && cp <= 0xDBFF &&
                        end - p >= 6 && p[0] == '\\' && p[1] == 'u') {
                        const char *save = p;
                        p += 2;
                        uint32_t lo;
                        if (!hex4(lo))
                            return false;
                        if (lo >= 0xDC00 && lo <= 0xDFFF) {
                            cp = 0x10000 + ((cp - 0xD800) << 10) +
                                 (lo - 0xDC00);
                        } else {
                            p = save;   // Unpaired; keep as-is.
                        }
                    }
                    appendUtf8(out, cp);
                    break;
                  }
                  default:
                    return fail("bad escape character");
                }
            } else {
                out += *p++;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;
        return true;
    }

    bool
    number(double &out)
    {
        const char *start = p;
        if (p < end && *p == '-')
            ++p;
        const char *digits = p;
        while (p < end && std::isdigit(static_cast<unsigned char>(*p)))
            ++p;
        if (p == start || (*start == '-' && p == start + 1))
            return fail("expected number");
        if (p - digits > 1 && *digits == '0')
            return fail("leading zero in number");
        if (p < end && *p == '.') {
            ++p;
            if (p >= end ||
                !std::isdigit(static_cast<unsigned char>(*p)))
                return fail("bad fraction");
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        if (p < end && (*p == 'e' || *p == 'E')) {
            ++p;
            if (p < end && (*p == '+' || *p == '-'))
                ++p;
            if (p >= end ||
                !std::isdigit(static_cast<unsigned char>(*p)))
                return fail("bad exponent");
            while (p < end &&
                   std::isdigit(static_cast<unsigned char>(*p)))
                ++p;
        }
        out = std::strtod(std::string(start, p).c_str(), nullptr);
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > 256)
            return fail("nesting too deep");
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            out = JsonValue::makeObject();
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!string(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return fail("expected ':'");
                ++p;
                JsonValue member;
                if (!value(member, depth + 1))
                    return false;
                out.mutableObject()[key] = std::move(member);
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == '}') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
          }
          case '[': {
            ++p;
            out = JsonValue::makeArray();
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                JsonValue element;
                if (!value(element, depth + 1))
                    return false;
                out.mutableArray().push_back(std::move(element));
                skipWs();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                if (p < end && *p == ']') {
                    ++p;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
          }
          case '"': {
            std::string s;
            if (!string(s))
                return false;
            out = JsonValue::makeString(std::move(s));
            return true;
          }
          case 't':
            if (!literal("true"))
                return false;
            out = JsonValue::makeBool(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = JsonValue::makeBool(false);
            return true;
          case 'n':
            if (!literal("null"))
                return false;
            out = JsonValue();
            return true;
          default: {
            double d;
            if (!number(d))
                return false;
            out = JsonValue::makeNumber(d);
            return true;
          }
        }
    }
};

} // namespace

bool
jsonParse(const std::string &text, JsonValue &out, std::string *err)
{
    out = JsonValue();
    JsonParser parser{text.data(), text.data() + text.size(),
                      text.data(), {}};
    JsonValue parsed;
    if (!parser.value(parsed, 0)) {
        if (err)
            *err = parser.err;
        return false;
    }
    parser.skipWs();
    if (parser.p != parser.end) {
        if (err)
            *err = "trailing garbage after JSON value";
        return false;
    }
    out = std::move(parsed);
    return true;
}

} // namespace ash
