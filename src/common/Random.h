/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**). Used by
 * stimulus generators, the partitioner, and property tests. We avoid
 * std::mt19937 so that streams are reproducible across standard-library
 * implementations.
 */

#ifndef ASH_COMMON_RANDOM_H
#define ASH_COMMON_RANDOM_H

#include <cstdint>

namespace ash {

/** xoshiro256** PRNG with splitmix64 seeding. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the stream from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to fill the state.
        for (auto &word : state) {
            seed += 0x9e3779b97f4a7c15ull;
            uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t result = rotl(state[1] * 5, 7) * 9;
        uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @p bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        // Lemire-style rejection-free reduction is fine here: slight
        // modulo bias is irrelevant for workload generation.
        return next() % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** True with probability @p p (clamped to [0,1]). */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return static_cast<double>(next() >> 11) *
                   (1.0 / 9007199254740992.0) < p;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) *
               (1.0 / 9007199254740992.0);
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state[4];
};

} // namespace ash

#endif // ASH_COMMON_RANDOM_H
