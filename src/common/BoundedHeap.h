/**
 * @file
 * A fixed-capacity binary min-heap. This models the pipelined-heap
 * priority queue inside each tile's Argument Queue (AQ, Sec 4.2): pops
 * return the lowest-priority-key element, and when the structure fills
 * up the *highest*-key elements can be extracted so the TMU's spill FSM
 * can move them to memory (high timestamps spill first, preventing them
 * from starving low-timestamp work).
 */

#ifndef ASH_COMMON_BOUNDEDHEAP_H
#define ASH_COMMON_BOUNDEDHEAP_H

#include <algorithm>
#include <utility>
#include <vector>

#include "common/Logging.h"

namespace ash {

/**
 * Min-heap over T with an explicit capacity. Comparison uses
 * Compare(a, b) returning true when a orders before b (lower priority
 * key first).
 */
template <typename T, typename Compare = std::less<T>>
class BoundedHeap
{
  public:
    explicit BoundedHeap(size_t capacity, Compare cmp = Compare{})
        : _capacity(capacity), _cmp(std::move(cmp))
    {
        _items.reserve(capacity);
    }

    size_t size() const { return _items.size(); }
    size_t capacity() const { return _capacity; }
    bool empty() const { return _items.empty(); }
    bool full() const { return _items.size() >= _capacity; }

    /** Insert @p item; the heap must not be full. */
    void
    push(T item)
    {
        ASH_ASSERT(!full(), "BoundedHeap overflow (capacity %zu)",
                   _capacity);
        _items.push_back(std::move(item));
        siftUp(_items.size() - 1);
    }

    /** Smallest element; heap must be nonempty. */
    const T &
    top() const
    {
        ASH_ASSERT(!empty());
        return _items.front();
    }

    /** Remove and return the smallest element. */
    T
    pop()
    {
        ASH_ASSERT(!empty());
        T out = std::move(_items.front());
        _items.front() = std::move(_items.back());
        _items.pop_back();
        if (!_items.empty())
            siftDown(0);
        return out;
    }

    /**
     * Remove and return the element with the *largest* key. Used for
     * spilling when the AQ fills. Linear scan over the leaf half; this
     * matches hardware that spills lazily and is fine in simulation
     * because spills are rare.
     */
    T
    extractWorst()
    {
        ASH_ASSERT(!empty());
        size_t first_leaf = _items.size() / 2;
        size_t worst = first_leaf;
        for (size_t i = first_leaf + 1; i < _items.size(); ++i) {
            if (_cmp(_items[worst], _items[i]))
                worst = i;
        }
        T out = std::move(_items[worst]);
        _items[worst] = std::move(_items.back());
        _items.pop_back();
        if (worst < _items.size()) {
            siftDown(worst);
            siftUp(worst);
        }
        return out;
    }

    /**
     * Remove every element matching @p pred; returns the number
     * removed. Used for descriptor cancellation on aborts.
     */
    template <typename Pred>
    size_t
    removeIf(Pred pred)
    {
        size_t before = _items.size();
        _items.erase(std::remove_if(_items.begin(), _items.end(), pred),
                     _items.end());
        std::make_heap(_items.begin(), _items.end(),
                       [this](const T &a, const T &b) {
                           return _cmp(b, a);
                       });
        return before - _items.size();
    }

    /** Unordered view of the contents (for occupancy accounting). */
    const std::vector<T> &items() const { return _items; }

    void clear() { _items.clear(); }

  private:
    void
    siftUp(size_t i)
    {
        while (i > 0) {
            size_t parent = (i - 1) / 2;
            if (!_cmp(_items[i], _items[parent]))
                break;
            std::swap(_items[i], _items[parent]);
            i = parent;
        }
    }

    void
    siftDown(size_t i)
    {
        size_t n = _items.size();
        while (true) {
            size_t left = 2 * i + 1;
            size_t right = left + 1;
            size_t best = i;
            if (left < n && _cmp(_items[left], _items[best]))
                best = left;
            if (right < n && _cmp(_items[right], _items[best]))
                best = right;
            if (best == i)
                break;
            std::swap(_items[i], _items[best]);
            i = best;
        }
    }

    size_t _capacity;
    Compare _cmp;
    std::vector<T> _items;
};

} // namespace ash

#endif // ASH_COMMON_BOUNDEDHEAP_H
