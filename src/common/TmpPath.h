/**
 * @file
 * Unique temp-file names for the atomic tmp+rename publish pattern
 * used by every manifest/image/results writer in the repo.
 *
 * A FIXED tmp suffix ("<path>.tmp") is only safe while a directory
 * has exactly one writer: two processes sharing a checkpoint or
 * result-cache directory would interleave writes into the SAME tmp
 * file, and the rename — atomic as it is — could then publish a torn
 * mixture of both. Salting the suffix with (pid, per-process
 * counter) gives every in-flight write its own file; concurrent
 * publishes race only at the rename, where last-writer-wins but each
 * candidate is complete, so a reader never observes a torn file.
 *
 * Header-only: ckpt, exec, and serve all write manifests and must
 * not gain link edges for a name.
 */

#ifndef ASH_COMMON_TMPPATH_H
#define ASH_COMMON_TMPPATH_H

#include <atomic>
#include <string>
#include <unistd.h>

namespace ash {

/** "<path>.tmp.<pid>.<seq>" — unique per in-flight write. */
inline std::string
uniqueTmpPath(const std::string &path)
{
    static std::atomic<uint64_t> seq{0};
    return path + ".tmp." + std::to_string(getpid()) + "." +
           std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

} // namespace ash

#endif // ASH_COMMON_TMPPATH_H
