/**
 * @file
 * Indexed event heap: a time-ordered priority queue that keeps the
 * (potentially fat) event payloads parked in a recycled slot pool and
 * heapifies only 16-byte {time, slot, seq} handles. Replaces
 * `std::priority_queue<Event>` in the cycle-level engines, where
 * sifting used to move whole Event structs — including a shared_ptr
 * whose refcount churned on every swap.
 *
 * Determinism: with TiePolicy::Compat the heap uses std::push_heap /
 * std::pop_heap with a time-only comparator — the exact algorithms
 * and comparator std::priority_queue ran over full events — so the
 * pop order, including the layout-dependent order of equal-time
 * events, is bit-identical to the seed engine's. TiePolicy::Fifo
 * breaks equal-time ties by insertion sequence instead, which is the
 * saner contract for new code but NOT what the seed engines shipped.
 */

#ifndef ASH_COMMON_EVENTHEAP_H
#define ASH_COMMON_EVENTHEAP_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/Logging.h"

namespace ash {

enum class TiePolicy : uint8_t {
    Compat,   ///< Equal-time order = std::priority_queue's (layout).
    Fifo,     ///< Equal-time order = insertion order.
};

template <typename Payload, TiePolicy Policy = TiePolicy::Compat>
class EventHeap
{
  public:
    size_t size() const { return _handles.size(); }
    bool empty() const { return _handles.empty(); }

    /** Earliest pending time; heap must be nonempty. */
    uint64_t
    topTime() const
    {
        ASH_ASSERT(!empty());
        return _handles.front().time;
    }

    /** Payload of the earliest event; heap must be nonempty. */
    const Payload &
    top() const
    {
        ASH_ASSERT(!empty());
        return _pool[_handles.front().slot];
    }

    void
    push(uint64_t time, Payload payload)
    {
        uint32_t slot;
        if (!_free.empty()) {
            slot = _free.back();
            _free.pop_back();
            _pool[slot] = std::move(payload);
        } else {
            slot = static_cast<uint32_t>(_pool.size());
            _pool.push_back(std::move(payload));
        }
        _handles.push_back(Handle{time, slot, _seq++});
        std::push_heap(_handles.begin(), _handles.end(), after);
    }

    /** Remove and return the earliest event's payload. */
    Payload
    pop()
    {
        ASH_ASSERT(!empty());
        std::pop_heap(_handles.begin(), _handles.end(), after);
        Handle h = _handles.back();
        _handles.pop_back();
        _free.push_back(h.slot);
        return std::move(_pool[h.slot]);
    }

    void
    clear()
    {
        _handles.clear();
        _pool.clear();
        _free.clear();
        _seq = 0;
    }

    /// @name Checkpoint support
    ///
    /// The heap-array layout determines Compat's equal-time pop
    /// order, so serialization must preserve the handle array
    /// EXACTLY — visitEntries walks it in storage order, and
    /// restoreEntry appends in that same order without re-heapifying
    /// (a valid heap round-trips to the identical array). Slot
    /// numbers are NOT preserved: after() never reads the slot, so
    /// densely renumbered slots leave pop order bit-identical.
    /// @{

    /** Visit {time, seq, payload} of every entry in array order. */
    template <typename Fn>
    void
    visitEntries(Fn &&fn) const
    {
        for (const Handle &h : _handles)
            fn(h.time, h.seq, _pool[h.slot]);
    }

    /**
     * Append one entry during restore, preserving array order and
     * the saved sequence number. Caller must feed entries in the
     * exact visitEntries() order of the saved heap, starting from an
     * empty/clear()ed heap, and finish with restoreSeq().
     */
    void
    restoreEntry(uint64_t time, uint32_t seq, Payload payload)
    {
        uint32_t slot = static_cast<uint32_t>(_pool.size());
        _pool.push_back(std::move(payload));
        _handles.push_back(Handle{time, slot, seq});
    }

    /** Next sequence number to assign (serialize alongside entries). */
    uint32_t nextSeq() const { return _seq; }
    void restoreSeq(uint32_t seq) { _seq = seq; }

    /// @}

  private:
    struct Handle
    {
        uint64_t time;
        uint32_t slot;
        uint32_t seq;
    };

    /**
     * Heap "less": true when @p a belongs farther from the top than
     * @p b. Compat compares times only (equal-time order then falls
     * out of the heap algorithms, matching std::priority_queue with
     * a time-only operator>); Fifo additionally pops lower sequence
     * numbers first among equal times.
     */
    static bool
    after(const Handle &a, const Handle &b)
    {
        if (a.time != b.time)
            return a.time > b.time;
        if (Policy == TiePolicy::Fifo)
            return a.seq > b.seq;
        return false;
    }

    std::vector<Handle> _handles;   ///< Binary heap of light handles.
    std::vector<Payload> _pool;     ///< Parked payloads, never sifted.
    std::vector<uint32_t> _free;    ///< Recyclable pool slots.
    uint32_t _seq = 0;
};

} // namespace ash

#endif // ASH_COMMON_EVENTHEAP_H
