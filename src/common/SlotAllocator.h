/**
 * @file
 * Dense slot allocator: assigns consecutive small integers to sparse
 * uint32 keys (node ids) so per-key hot state can live in flat arrays
 * instead of hash maps. The compiler runs one of these per task to
 * emit the argument/buffer slot maps the engines index at runtime;
 * first-come first-served assignment makes slot ids a pure function
 * of the (deterministic) insertion order.
 */

#ifndef ASH_COMMON_SLOTALLOCATOR_H
#define ASH_COMMON_SLOTALLOCATOR_H

#include <cstdint>
#include <vector>

namespace ash {

class SlotAllocator
{
  public:
    static constexpr uint32_t npos = ~0u;

    /** Slot of @p key, assigning the next dense id if unseen. */
    uint32_t
    add(uint32_t key)
    {
        if (key >= _slotOf.size())
            _slotOf.resize(key + 1, npos);
        if (_slotOf[key] == npos) {
            _slotOf[key] = static_cast<uint32_t>(_keys.size());
            _keys.push_back(key);
        }
        return _slotOf[key];
    }

    /** Slot of @p key, or npos when it was never added. */
    uint32_t
    slot(uint32_t key) const
    {
        return key < _slotOf.size() ? _slotOf[key] : npos;
    }

    /** Keys in slot order (slot i holds key keys()[i]). */
    const std::vector<uint32_t> &keys() const { return _keys; }

    /** Number of slots assigned. */
    size_t size() const { return _keys.size(); }

  private:
    std::vector<uint32_t> _slotOf;   ///< key -> slot, npos = none.
    std::vector<uint32_t> _keys;     ///< slot -> key.
};

} // namespace ash

#endif // ASH_COMMON_SLOTALLOCATOR_H
