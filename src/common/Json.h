/**
 * @file
 * Minimal JSON emission and validation. JsonWriter is a streaming
 * writer with automatic comma/nesting management used by StatSet,
 * the event tracer, and the bench report exporter; jsonValid() is a
 * dependency-free recursive-descent checker used by tests and by the
 * exporters' self-checks. JsonValue/jsonParse() add the one consumer
 * the checkpoint layer needs: a tiny DOM for reading back manifests
 * that this repo itself wrote (strings, numbers, bools, nulls,
 * arrays, objects; \u escapes are decoded to UTF-8).
 */

#ifndef ASH_COMMON_JSON_H
#define ASH_COMMON_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace ash {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Validate that @p text is one complete JSON value. Returns true on
 * success; otherwise false with a position-annotated message in
 * @p err (when non-null).
 */
bool jsonValid(const std::string &text, std::string *err = nullptr);

/**
 * Parsed JSON value. A small tagged union; object member order is
 * not preserved (std::map), which is fine for manifest lookups. All
 * numbers are kept as double — manifests store cycle counts and
 * retention indices well within double's 2^53 exact-integer range.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isObject() const { return _kind == Kind::Object; }
    bool isArray() const { return _kind == Kind::Array; }
    bool isString() const { return _kind == Kind::String; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isBool() const { return _kind == Kind::Bool; }

    bool boolean() const { return _bool; }
    double number() const { return _number; }
    uint64_t asU64() const { return static_cast<uint64_t>(_number); }
    const std::string &string() const { return _string; }
    const std::vector<JsonValue> &array() const { return _array; }
    const std::map<std::string, JsonValue> &object() const
    { return _object; }

    /** Object member by key, or null-kind sentinel when absent. */
    const JsonValue &operator[](const std::string &key) const;
    /** Array element, or null-kind sentinel when out of range. */
    const JsonValue &at(size_t i) const;
    bool has(const std::string &key) const
    { return _kind == Kind::Object && _object.count(key) != 0; }

    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string v);
    static JsonValue makeArray();
    static JsonValue makeObject();

    std::vector<JsonValue> &mutableArray() { return _array; }
    std::map<std::string, JsonValue> &mutableObject()
    { return _object; }

  private:
    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<JsonValue> _array;
    std::map<std::string, JsonValue> _object;
};

/**
 * Parse @p text into @p out. Returns true when @p text is exactly
 * one JSON value; otherwise false with a position-annotated message
 * in @p err (when non-null) and @p out reset to null.
 */
bool jsonParse(const std::string &text, JsonValue &out,
               std::string *err = nullptr);

/**
 * Streaming JSON writer. Push objects/arrays with the begin/end
 * pairs, emit members with key() + value() or the kv() shorthands;
 * commas and
 * indentation are handled automatically. The result is always
 * syntactically valid as long as begin/end calls are balanced.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(bool pretty = true) : _pretty(pretty) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a member inside an object; follow with a value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint32_t v) { return value(uint64_t(v)); }
    JsonWriter &value(int v) { return value(int64_t(v)); }
    JsonWriter &value(bool v);
    JsonWriter &null();

    JsonWriter &kv(const std::string &k, const std::string &v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, const char *v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, double v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, uint64_t v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, int64_t v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, uint32_t v)
    { return key(k).value(uint64_t(v)); }
    JsonWriter &kv(const std::string &k, int v)
    { return key(k).value(int64_t(v)); }
    JsonWriter &kv(const std::string &k, bool v)
    { return key(k).value(v); }

    /** Finished document; begin/end must be balanced by now. */
    std::string str() const { return _out.str(); }

  private:
    void separate();
    void indent();

    std::ostringstream _out;
    /** One frame per open container: 'o'/'a' and members-emitted. */
    struct Frame { char kind; bool any = false; };
    std::vector<Frame> _stack;
    bool _pretty;
    bool _pendingKey = false;
};

} // namespace ash

#endif // ASH_COMMON_JSON_H
