/**
 * @file
 * Minimal JSON emission and validation. JsonWriter is a streaming
 * writer with automatic comma/nesting management used by StatSet,
 * the event tracer, and the bench report exporter; jsonValid() is a
 * dependency-free recursive-descent checker used by tests and by the
 * exporters' self-checks. No DOM: the repo only ever writes JSON and
 * verifies shape, it never consumes foreign JSON.
 */

#ifndef ASH_COMMON_JSON_H
#define ASH_COMMON_JSON_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace ash {

/** Escape @p s for inclusion in a JSON string literal (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Validate that @p text is one complete JSON value. Returns true on
 * success; otherwise false with a position-annotated message in
 * @p err (when non-null).
 */
bool jsonValid(const std::string &text, std::string *err = nullptr);

/**
 * Streaming JSON writer. Push objects/arrays with the begin/end
 * pairs, emit members with key() + value() or the kv() shorthands;
 * commas and
 * indentation are handled automatically. The result is always
 * syntactically valid as long as begin/end calls are balanced.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(bool pretty = true) : _pretty(pretty) {}

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Start a member inside an object; follow with a value. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(uint64_t v);
    JsonWriter &value(int64_t v);
    JsonWriter &value(uint32_t v) { return value(uint64_t(v)); }
    JsonWriter &value(int v) { return value(int64_t(v)); }
    JsonWriter &value(bool v);
    JsonWriter &null();

    JsonWriter &kv(const std::string &k, const std::string &v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, const char *v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, double v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, uint64_t v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, int64_t v)
    { return key(k).value(v); }
    JsonWriter &kv(const std::string &k, uint32_t v)
    { return key(k).value(uint64_t(v)); }
    JsonWriter &kv(const std::string &k, int v)
    { return key(k).value(int64_t(v)); }
    JsonWriter &kv(const std::string &k, bool v)
    { return key(k).value(v); }

    /** Finished document; begin/end must be balanced by now. */
    std::string str() const { return _out.str(); }

  private:
    void separate();
    void indent();

    std::ostringstream _out;
    /** One frame per open container: 'o'/'a' and members-emitted. */
    struct Frame { char kind; bool any = false; };
    std::vector<Frame> _stack;
    bool _pretty;
    bool _pendingKey = false;
};

} // namespace ash

#endif // ASH_COMMON_JSON_H
