#include "common/Stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/Json.h"
#include "common/Logging.h"

namespace ash {

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

unsigned
Histogram::bucketOf(uint64_t v)
{
    if (v == 0)
        return 0;
    unsigned b = static_cast<unsigned>(64 - __builtin_clzll(v));
    // The top bucket absorbs [2^62, UINT64_MAX] so values with the
    // high bit set cannot index past the array.
    return std::min(b, kBuckets - 1);
}

uint64_t
Histogram::bucketLow(unsigned b)
{
    if (b == 0)
        return 0;
    return 1ull << (b - 1);
}

uint64_t
Histogram::bucketHigh(unsigned b)
{
    if (b == 0)
        return 0;
    if (b >= kBuckets - 1)
        return ~0ull;
    return (1ull << b) - 1;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        minValue = other.minValue;
        maxValue = other.maxValue;
    } else {
        minValue = std::min(minValue, other.minValue);
        maxValue = std::max(maxValue, other.maxValue);
    }
    count += other.count;
    sum += other.sum;
    for (unsigned b = 0; b < kBuckets; ++b)
        buckets[b] += other.buckets[b];
}

uint64_t
Histogram::percentileUpperBound(double p) const
{
    if (count == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(count)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
        seen += buckets[b];
        if (seen >= rank)
            return std::min(bucketHigh(b), maxValue);
    }
    return maxValue;
}

// ---------------------------------------------------------------------
// StatSet
// ---------------------------------------------------------------------

void
StatSet::inc(const std::string &name, uint64_t delta)
{
    _counters[name] += delta;
}

void
StatSet::set(const std::string &name, uint64_t value)
{
    _counters[name] = value;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second;
}

void
StatSet::sample(const std::string &name, double value)
{
    _accums[name].sample(value);
}

Accumulator
StatSet::accum(const std::string &name) const
{
    auto it = _accums.find(name);
    return it == _accums.end() ? Accumulator{} : it->second;
}

void
StatSet::hist(const std::string &name, uint64_t value)
{
    _hists[name].record(value);
}

Histogram
StatSet::histogram(const std::string &name) const
{
    auto it = _hists.find(name);
    return it == _hists.end() ? Histogram{} : it->second;
}

void
StatSet::addHistogram(const std::string &name, const Histogram &h)
{
    if (h.count == 0)
        return;
    _hists[name].merge(h);
}

void
StatSet::addAccum(const std::string &name, const Accumulator &acc)
{
    if (acc.count == 0)
        return;
    Accumulator &mine = _accums[name];
    if (mine.count == 0) {
        mine = acc;
        return;
    }
    mine.count += acc.count;
    mine.sum += acc.sum;
    mine.minValue = std::min(mine.minValue, acc.minValue);
    mine.maxValue = std::max(mine.maxValue, acc.maxValue);
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other._counters)
        _counters[name] += value;
    for (const auto &[name, acc] : other._accums) {
        Accumulator &mine = _accums[name];
        if (acc.count == 0)
            continue;
        if (mine.count == 0) {
            mine = acc;
        } else {
            mine.count += acc.count;
            mine.sum += acc.sum;
            mine.minValue = std::min(mine.minValue, acc.minValue);
            mine.maxValue = std::max(mine.maxValue, acc.maxValue);
        }
    }
    for (const auto &[name, h] : other._hists)
        _hists[name].merge(h);
}

void
StatSet::mergeScoped(const std::string &prefix, const StatSet &other)
{
    if (prefix.empty()) {
        merge(other);
        return;
    }
    StatSet renamed;
    for (const auto &[name, value] : other._counters)
        renamed._counters[prefix + "." + name] = value;
    for (const auto &[name, acc] : other._accums)
        renamed._accums[prefix + "." + name] = acc;
    for (const auto &[name, h] : other._hists)
        renamed._hists[prefix + "." + name] = h;
    merge(renamed);
}

StatScope
StatSet::scope(const std::string &prefix)
{
    return StatScope(*this, prefix);
}

void
StatSet::clear()
{
    _counters.clear();
    _accums.clear();
    _hists.clear();
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : _counters)
        os << name << " = " << value << "\n";
    for (const auto &[name, acc] : _accums) {
        os << name << " = mean " << acc.mean() << " (n=" << acc.count
           << ", min=" << acc.minValue << ", max=" << acc.maxValue
           << ")\n";
    }
    for (const auto &[name, h] : _hists) {
        os << name << " = hist mean " << h.mean() << " (n=" << h.count
           << ", min=" << h.minValue << ", max=" << h.maxValue
           << ", p50<=" << h.percentileUpperBound(0.5)
           << ", p99<=" << h.percentileUpperBound(0.99) << ")\n";
    }
    return os.str();
}

std::string
StatSet::toJson(bool pretty) const
{
    JsonWriter w(pretty);
    w.beginObject();

    w.key("counters").beginObject();
    for (const auto &[name, value] : _counters)
        w.kv(name, value);
    w.endObject();

    w.key("accumulators").beginObject();
    for (const auto &[name, acc] : _accums) {
        w.key(name).beginObject();
        w.kv("count", acc.count);
        w.kv("sum", acc.sum);
        w.kv("min", acc.minValue);
        w.kv("max", acc.maxValue);
        w.kv("mean", acc.mean());
        w.endObject();
    }
    w.endObject();

    w.key("histograms").beginObject();
    for (const auto &[name, h] : _hists) {
        w.key(name).beginObject();
        w.kv("count", h.count);
        w.kv("sum", h.sum);
        w.kv("min", h.minValue);
        w.kv("max", h.maxValue);
        w.kv("mean", h.mean());
        w.kv("p50", h.percentileUpperBound(0.5));
        w.kv("p99", h.percentileUpperBound(0.99));
        w.key("buckets").beginArray();
        for (unsigned b = 0; b < Histogram::kBuckets; ++b) {
            if (h.buckets[b] == 0)
                continue;
            w.beginArray();
            w.value(Histogram::bucketLow(b));
            w.value(Histogram::bucketHigh(b));
            w.value(h.buckets[b]);
            w.endArray();
        }
        w.endArray();
        w.endObject();
    }
    w.endObject();

    w.endObject();
    return w.str();
}

double
geomean(const double *values, size_t n)
{
    if (n == 0)
        return 0.0;
    double logSum = 0.0;
    size_t used = 0;
    for (size_t i = 0; i < n; ++i) {
        if (!(values[i] > 0.0)) {
            warn("geomean: skipping non-positive value %g "
                 "(input %zu of %zu)", values[i], i, n);
            continue;
        }
        logSum += std::log(values[i]);
        ++used;
    }
    return used ? std::exp(logSum / static_cast<double>(used)) : 0.0;
}

} // namespace ash
