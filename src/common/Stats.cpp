#include "common/Stats.h"

#include <cmath>
#include <sstream>

namespace ash {

void
StatSet::inc(const std::string &name, uint64_t delta)
{
    _counters[name] += delta;
}

void
StatSet::set(const std::string &name, uint64_t value)
{
    _counters[name] = value;
}

uint64_t
StatSet::get(const std::string &name) const
{
    auto it = _counters.find(name);
    return it == _counters.end() ? 0 : it->second;
}

void
StatSet::sample(const std::string &name, double value)
{
    _accums[name].sample(value);
}

Accumulator
StatSet::accum(const std::string &name) const
{
    auto it = _accums.find(name);
    return it == _accums.end() ? Accumulator{} : it->second;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &[name, value] : other._counters)
        _counters[name] += value;
    for (const auto &[name, acc] : other._accums) {
        Accumulator &mine = _accums[name];
        if (acc.count == 0)
            continue;
        if (mine.count == 0) {
            mine = acc;
        } else {
            mine.count += acc.count;
            mine.sum += acc.sum;
            mine.minValue = std::min(mine.minValue, acc.minValue);
            mine.maxValue = std::max(mine.maxValue, acc.maxValue);
        }
    }
}

void
StatSet::clear()
{
    _counters.clear();
    _accums.clear();
}

std::string
StatSet::toString() const
{
    std::ostringstream os;
    for (const auto &[name, value] : _counters)
        os << name << " = " << value << "\n";
    for (const auto &[name, acc] : _accums) {
        os << name << " = mean " << acc.mean() << " (n=" << acc.count
           << ", min=" << acc.minValue << ", max=" << acc.maxValue
           << ")\n";
    }
    return os.str();
}

double
geomean(const double *values, size_t n)
{
    if (n == 0)
        return 0.0;
    double logSum = 0.0;
    for (size_t i = 0; i < n; ++i)
        logSum += std::log(values[i]);
    return std::exp(logSum / static_cast<double>(n));
}

} // namespace ash
