/**
 * @file
 * SortedPool: a std::map replacement for the TMU queues (AQ, TCQ)
 * that keeps values in a recycled slot pool and maintains key order
 * through a small sorted index of {key, slot} entries. Lookups are
 * binary searches over a contiguous array instead of red-black-tree
 * pointer chases, and erase/insert recycle the value slots, so
 * Bundle/TcqEntry allocations (descriptor vectors, undo logs) are
 * reused across epochs instead of freed and reallocated per dispatch.
 *
 * Determinism: iteration visits strictly ascending keys — exactly
 * std::map's order — so bulk commits, spill victim selection
 * (largest key = std::prev(end())) and younger-first abort scans
 * (upper_bound) behave identically to the seed engine.
 *
 * Recycling contract: emplace() hands back the value slot in
 * whatever state its previous occupant left it (capacity intact,
 * contents stale). Call sites must reset every live field — which
 * the TMU does anyway when it fills a fresh Bundle/TcqEntry — and
 * must treat the value as dead after erase().
 *
 * Iterators are positions in the sorted index: any insert or erase
 * invalidates them (unlike std::map's node-stable iterators), except
 * that erase() returns the next position exactly like std::map.
 */

#ifndef ASH_COMMON_SORTEDPOOL_H
#define ASH_COMMON_SORTEDPOOL_H

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/Logging.h"

namespace ash {

template <typename Key, typename Value>
class SortedPool
{
    struct Entry
    {
        Key key;
        uint32_t slot;
    };

  public:
    /** What dereferencing an iterator yields (map-style names). */
    struct Ref
    {
        const Key &first;
        Value &second;
    };

    class iterator
    {
      public:
        iterator() = default;
        iterator(SortedPool *owner, size_t pos)
            : _owner(owner), _pos(pos)
        {
        }

        Ref
        operator*() const
        {
            const Entry &e = _owner->_index[_pos];
            return Ref{e.key, _owner->_pool[e.slot]};
        }

        /** Arrow proxy so it->first / it->second work. */
        struct Arrow
        {
            Ref ref;
            Ref *operator->() { return &ref; }
        };
        Arrow operator->() const { return Arrow{**this}; }

        iterator &
        operator++()
        {
            ++_pos;
            return *this;
        }
        iterator &
        operator--()
        {
            --_pos;
            return *this;
        }
        bool
        operator==(const iterator &o) const
        {
            return _pos == o._pos;
        }
        bool
        operator!=(const iterator &o) const
        {
            return _pos != o._pos;
        }

        size_t pos() const { return _pos; }

      private:
        friend class SortedPool;
        SortedPool *_owner = nullptr;
        size_t _pos = 0;
    };

    size_t size() const { return _index.size(); }
    bool empty() const { return _index.empty(); }

    iterator begin() { return iterator(this, 0); }
    iterator end() { return iterator(this, _index.size()); }

    iterator
    find(const Key &key)
    {
        size_t pos = lowerPos(key);
        if (pos < _index.size() && _index[pos].key == key)
            return iterator(this, pos);
        return end();
    }

    iterator
    lower_bound(const Key &key)
    {
        return iterator(this, lowerPos(key));
    }

    size_t
    count(const Key &key) const
    {
        size_t pos = lowerPos(key);
        return pos < _index.size() && _index[pos].key == key ? 1 : 0;
    }

    iterator
    upper_bound(const Key &key)
    {
        size_t pos = lowerPos(key);
        if (pos < _index.size() && _index[pos].key == key)
            ++pos;
        return iterator(this, pos);
    }

    /**
     * Find-or-create @p key. On creation the mapped value is a
     * recycled slot with stale contents (see the recycling contract
     * above); the bool is true exactly when the key was inserted.
     */
    std::pair<iterator, bool>
    emplace(const Key &key)
    {
        size_t pos = lowerPos(key);
        if (pos < _index.size() && _index[pos].key == key)
            return {iterator(this, pos), false};
        uint32_t slot;
        if (!_free.empty()) {
            slot = _free.back();
            _free.pop_back();
        } else {
            slot = static_cast<uint32_t>(_pool.size());
            _pool.emplace_back();
        }
        _index.insert(_index.begin() + pos, Entry{key, slot});
        return {iterator(this, pos), true};
    }

    /** Erase by position; returns the following position. */
    iterator
    erase(iterator it)
    {
        ASH_ASSERT(it._pos < _index.size());
        _free.push_back(_index[it._pos].slot);
        _index.erase(_index.begin() + it._pos);
        return iterator(this, it._pos);
    }

    size_t
    erase(const Key &key)
    {
        iterator it = find(key);
        if (it == end())
            return 0;
        erase(it);
        return 1;
    }

    void
    clear()
    {
        for (const Entry &e : _index)
            _free.push_back(e.slot);
        _index.clear();
    }

    /** Number of pooled value slots ever allocated (for tests). */
    size_t poolCapacity() const { return _pool.size(); }

  private:
    size_t
    lowerPos(const Key &key) const
    {
        return std::lower_bound(_index.begin(), _index.end(), key,
                                [](const Entry &e, const Key &k) {
                                    return e.key < k;
                                }) -
               _index.begin();
    }

    std::vector<Entry> _index;    ///< Sorted by key, ascending.
    std::vector<Value> _pool;     ///< Slot storage, recycled.
    std::vector<uint32_t> _free;  ///< Free slot list (LIFO).
};

} // namespace ash

#endif // ASH_COMMON_SORTEDPOOL_H
