#include "common/Table.h"

#include <cstdio>
#include <sstream>

#include "common/Logging.h"

namespace ash {

TextTable::TextTable(std::vector<std::string> header)
    : _header(std::move(header))
{
}

void
TextTable::addRow(std::vector<std::string> row)
{
    ASH_ASSERT(row.size() == _header.size(),
               "row arity %zu != header arity %zu", row.size(),
               _header.size());
    _rows.push_back(std::move(row));
}

std::string
TextTable::toString() const
{
    std::vector<size_t> widths(_header.size());
    for (size_t c = 0; c < _header.size(); ++c)
        widths[c] = _header[c].size();
    for (const auto &row : _rows) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << "  ";
            // Left-align the first column (labels), right-align data.
            if (c == 0) {
                os << row[c]
                   << std::string(widths[c] - row[c].size(), ' ');
            } else {
                os << std::string(widths[c] - row[c].size(), ' ')
                   << row[c];
            }
        }
        os << "\n";
    };

    emitRow(_header);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        emitRow(row);
    return os.str();
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::integer(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

std::string
TextTable::speedup(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
TextTable::percent(double fraction, int precision)
{
    return num(fraction * 100.0, precision) + "%";
}

std::string
TextTable::bytes(uint64_t n)
{
    char buf[64];
    if (n >= 1024ull * 1024) {
        std::snprintf(buf, sizeof(buf), "%.1fMB",
                      static_cast<double>(n) / (1024.0 * 1024.0));
    } else if (n >= 1024) {
        std::snprintf(buf, sizeof(buf), "%.1fKB",
                      static_cast<double>(n) / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(n));
    }
    return buf;
}

} // namespace ash
