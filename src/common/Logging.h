/**
 * @file
 * Logging and error-reporting utilities for the ASH library.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (bugs in ASH itself), fatal() for user-caused conditions the library
 * cannot recover from (bad Verilog, invalid configuration), and warn() /
 * inform() for status messages that never stop execution.
 *
 * Thread safety (required by the ash_exec host-parallel sweeps):
 * emission is serialized under one mutex so concurrent jobs never
 * split or interleave within a "[LEVEL ...]" line; the simulated-cycle
 * provider and the job id are thread_local, so every line is stamped
 * with the cycle of the simulation running on THAT thread and — on
 * sweep worker threads — the id of the job that produced it:
 *
 *   [WARN] message              (main thread, no simulation running)
 *   [WARN @c1234] message       (main thread, cycle 1234)
 *   [WARN j3 @c1234] message    (sweep job #3, cycle 1234)
 */

#ifndef ASH_COMMON_LOGGING_H
#define ASH_COMMON_LOGGING_H

#include <cstdarg>
#include <cstdint>
#include <string>

#include "common/Error.h"

namespace ash {

/** Verbosity levels for status messages. */
enum class LogLevel { Quiet, Normal, Verbose, Debug };

/** Set the global verbosity for inform()/debugLog() messages. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

/**
 * Structured log prefix: every message carries a level tag, and —
 * when a running simulator has registered its clock — the current
 * simulated cycle, so interleaved output is greppable and
 * attributable (see the file header for the exact forms).
 *
 * A simulator installs its monotonic cycle counter for the duration
 * of a run via setLogCycleProvider(); passing nullptr (or letting
 * LogCycleScope destruct) removes it. The provider is thread_local:
 * concurrent simulations on different threads each stamp their own
 * cycle.
 */
using LogCycleProvider = uint64_t (*)(const void *ctx);

/** Install @p fn/@p ctx as this thread's sim-cycle source. */
void setLogCycleProvider(LogCycleProvider fn, const void *ctx);

/**
 * Tag this thread's log lines with sweep job @p id ("j<id>" in the
 * prefix); -1 removes the tag. Installed by exec::SweepRunner around
 * each job so interleaved worker output stays attributable.
 */
void setLogJobId(int64_t id);

/** RAII installer/remover for the log cycle provider. */
class LogCycleScope
{
  public:
    LogCycleScope(LogCycleProvider fn, const void *ctx)
    { setLogCycleProvider(fn, ctx); }
    ~LogCycleScope() { setLogCycleProvider(nullptr, nullptr); }
    LogCycleScope(const LogCycleScope &) = delete;
    LogCycleScope &operator=(const LogCycleScope &) = delete;
};

/**
 * Report an unrecoverable user-level error (bad input, bad config) and
 * throw ash::FatalError. Printf-style formatting.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (an ASH bug) and abort.
 * Printf-style formatting.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a warning to stderr; execution continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a normal-priority status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit a debug-priority status message to stderr. */
void debugLog(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Exception thrown by fatal(); carries the formatted message. Part
 * of the recoverable ash::Error hierarchy (common/Error.h): a job
 * boundary treats a FatalError as "this input/config is bad", never
 * as "the process is doomed". Subclasses (verilog::ParseError,
 * verilog::ElabError) refine the kind tag and add source positions.
 */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg) : Error("fatal", msg) {}

  protected:
    FatalError(std::string kind, const std::string &msg)
        : Error(std::move(kind), msg)
    {
    }
};

} // namespace ash

namespace ash {

/** Implementation hook for ASH_ASSERT; do not call directly. */
[[noreturn]] void panicAssert(const char *cond, const char *file, int line,
                              const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace ash

/**
 * Assert an internal invariant; compiled in all build types because the
 * simulators rely on these checks for correctness testing. An optional
 * printf-style message may follow the condition.
 */
#define ASH_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::ash::panicAssert(#cond, __FILE__, __LINE__, "" __VA_ARGS__); \
        }                                                                  \
    } while (0)

#endif // ASH_COMMON_LOGGING_H
