/**
 * @file
 * Root of the recoverable ASH error hierarchy (the ash_guard failure
 * model, DESIGN.md "Failure model & guardrails").
 *
 * Every structured, *recoverable* failure in the stack derives from
 * ash::Error so that job-boundary code (exec::SweepRunner, bench
 * drivers, the chaos harness) can catch one type and report a typed
 * diagnostic instead of dying:
 *
 *   Error                  this file; carries a short kind() tag
 *    +- FatalError          common/Logging.h   kind "fatal"
 *    |   +- ParseError      verilog/Diag.h     kind "parse"
 *    |   +- ElabError       verilog/Diag.h     kind "elab"
 *    +- SnapshotError       ckpt/Snapshot.h    kind "snapshot"
 *    +- JobError            exec/Job.h         kind "job"
 *    +- InjectedFault       guard/Fault.h      kind "fault"
 *    +- CancelledError      guard/Cancel.h     kind "cancel"
 *    +- DivergenceError     guard/Divergence.h kind "divergence"
 *
 * Invariants: construction is cheap (no formatting at throw sites
 * beyond the message itself), what() is a complete human-readable
 * diagnostic, and kind() is a stable machine-checkable tag used in
 * structured JobFailure reports. Internal invariant violations (ASH
 * bugs) stay fatal: panic()/ASH_ASSERT still abort and are NOT part
 * of this hierarchy.
 */

#ifndef ASH_COMMON_ERROR_H
#define ASH_COMMON_ERROR_H

#include <stdexcept>
#include <string>

namespace ash {

/** Base of all recoverable ASH errors; see file header. */
class Error : public std::runtime_error
{
  public:
    Error(std::string kind, const std::string &what)
        : std::runtime_error(what), _kind(std::move(kind))
    {
    }

    /** Stable short tag ("parse", "snapshot", ...) for reports. */
    const std::string &kind() const { return _kind; }

  private:
    std::string _kind;
};

} // namespace ash

#endif // ASH_COMMON_ERROR_H
