#include "common/Logging.h"

#include <cstdio>
#include <cstdlib>

namespace ash {

namespace {

LogLevel globalLevel = LogLevel::Normal;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d%s%s\n",
                 cond, file, line, msg.empty() ? "" : ": ", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

} // namespace ash
