#include "common/Logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ash {

namespace {

std::atomic<LogLevel> globalLevel{LogLevel::Normal};

// Per-thread: each concurrently running simulation stamps its own
// cycle, and sweep workers carry their job id.
thread_local LogCycleProvider cycleProvider = nullptr;
thread_local const void *cycleProviderCtx = nullptr;
thread_local int64_t logJobId = -1;

/** Serializes emission so concurrent jobs never split a line. */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

/** "[WARN]", "[WARN @c1234]", or "[WARN j3 @c1234]" per Logging.h. */
std::string
prefix(const char *tag)
{
    char job[24] = "";
    if (logJobId >= 0)
        std::snprintf(job, sizeof(job), " j%lld",
                      (long long)logJobId);
    char buf[72];
    if (cycleProvider) {
        std::snprintf(buf, sizeof(buf), "[%s%s @c%llu]", tag, job,
                      (unsigned long long)cycleProvider(
                          cycleProviderCtx));
    } else {
        std::snprintf(buf, sizeof(buf), "[%s%s]", tag, job);
    }
    return buf;
}

void
emit(const char *tag, const std::string &msg)
{
    std::string pfx = prefix(tag);
    std::lock_guard<std::mutex> lock(emitMutex());
    std::fprintf(stderr, "%s %s\n", pfx.c_str(), msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogCycleProvider(LogCycleProvider fn, const void *ctx)
{
    cycleProvider = fn;
    cycleProviderCtx = fn ? ctx : nullptr;
}

void
setLogJobId(int64_t id)
{
    logJobId = id;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("FATAL", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("PANIC", msg);
    std::abort();
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    {
        std::lock_guard<std::mutex> lock(emitMutex());
        std::fprintf(stderr,
                     "%s assertion '%s' failed at %s:%d%s%s\n",
                     prefix("PANIC").c_str(), cond, file, line,
                     msg.empty() ? "" : ": ", msg.c_str());
    }
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("WARN", msg);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("INFO", msg);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("DEBUG", msg);
}

} // namespace ash
