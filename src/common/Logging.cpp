#include "common/Logging.h"

#include <cstdio>
#include <cstdlib>

namespace ash {

namespace {

LogLevel globalLevel = LogLevel::Normal;

LogCycleProvider cycleProvider = nullptr;
const void *cycleProviderCtx = nullptr;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

/** "[WARN]" or "[WARN @c1234]" per the Logging.h contract. */
std::string
prefix(const char *tag)
{
    char buf[48];
    if (cycleProvider) {
        std::snprintf(buf, sizeof(buf), "[%s @c%llu]", tag,
                      (unsigned long long)cycleProvider(
                          cycleProviderCtx));
    } else {
        std::snprintf(buf, sizeof(buf), "[%s]", tag);
    }
    return buf;
}

void
emit(const char *tag, const std::string &msg)
{
    std::fprintf(stderr, "%s %s\n", prefix(tag).c_str(), msg.c_str());
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
setLogCycleProvider(LogCycleProvider fn, const void *ctx)
{
    cycleProvider = fn;
    cycleProviderCtx = fn ? ctx : nullptr;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("FATAL", msg);
    throw FatalError(msg);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("PANIC", msg);
    std::abort();
}

void
panicAssert(const char *cond, const char *file, int line,
            const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%s assertion '%s' failed at %s:%d%s%s\n",
                 prefix("PANIC").c_str(), cond, file, line,
                 msg.empty() ? "" : ": ", msg.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("WARN", msg);
}

void
inform(const char *fmt, ...)
{
    if (globalLevel == LogLevel::Quiet)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("INFO", msg);
}

void
debugLog(const char *fmt, ...)
{
    if (globalLevel != LogLevel::Debug)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit("DEBUG", msg);
}

} // namespace ash
