/**
 * @file
 * Small bit-manipulation helpers shared across the RTL IR, the Verilog
 * frontend, and the simulators. All signal values in ASH are carried in
 * 64-bit words; widths from 1 to 64 bits are supported.
 */

#ifndef ASH_COMMON_BITUTILS_H
#define ASH_COMMON_BITUTILS_H

#include <bit>
#include <cstdint>

#include "common/Logging.h"

namespace ash {

/** Maximum signal width carried in a single IR value. */
constexpr unsigned maxSignalWidth = 64;

/** Mask covering the low @p width bits (width in [0, 64]). */
constexpr uint64_t
mask64(unsigned width)
{
    return width >= 64 ? ~0ull : ((1ull << width) - 1);
}

/** Truncate @p value to @p width bits. */
constexpr uint64_t
truncate(uint64_t value, unsigned width)
{
    return value & mask64(width);
}

/** Sign-extend the low @p width bits of @p value to 64 bits. */
constexpr int64_t
signExtend(uint64_t value, unsigned width)
{
    if (width == 0 || width >= 64)
        return static_cast<int64_t>(value);
    uint64_t sign = 1ull << (width - 1);
    return static_cast<int64_t>((value ^ sign) - sign);
}

/** Number of bits needed to represent @p value (at least 1). */
constexpr unsigned
bitsFor(uint64_t value)
{
    return value == 0 ? 1 : 64 - static_cast<unsigned>(
                                     std::countl_zero(value));
}

/** Smallest power of two >= @p value (value must be nonzero). */
constexpr uint64_t
roundUpPow2(uint64_t value)
{
    return std::bit_ceil(value);
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2Exact(uint64_t value)
{
    return static_cast<unsigned>(std::countr_zero(value));
}

/** Integer ceiling division. */
constexpr uint64_t
ceilDiv(uint64_t a, uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace ash

#endif // ASH_COMMON_BITUTILS_H
