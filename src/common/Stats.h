/**
 * @file
 * Lightweight named statistics used by every simulator component. A
 * StatSet owns scalar counters, averaging accumulators, and
 * log2-bucketed histograms, and can render itself for debugging or
 * export the whole set as JSON. Names are hierarchical by dotted
 * convention ("tile3.l1d.misses"); scope() returns a prefixing proxy
 * and mergeScoped() grafts one set under a prefix of another, which is
 * how per-tile and per-run stats roll up into one machine-readable
 * report. Benches read individual stats by name.
 */

#ifndef ASH_COMMON_STATS_H
#define ASH_COMMON_STATS_H

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace ash {

/** Accumulator tracking count/sum/min/max for a sampled quantity. */
struct Accumulator
{
    uint64_t count = 0;
    double sum = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;

    void
    sample(double v)
    {
        if (count == 0) {
            minValue = maxValue = v;
        } else {
            if (v < minValue)
                minValue = v;
            if (v > maxValue)
                maxValue = v;
        }
        ++count;
        sum += v;
    }

    double mean() const { return count ? sum / count : 0.0; }
};

/**
 * Power-of-two-bucketed histogram of a nonnegative integer quantity
 * (task lengths, queue depths, abort distances). Bucket 0 holds the
 * value 0; bucket b >= 1 holds values in [2^(b-1), 2^b). Fixed 64
 * buckets cover the whole uint64_t range, so record() never saturates
 * or allocates — cheap enough for per-event hot paths.
 */
struct Histogram
{
    static constexpr unsigned kBuckets = 64;

    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t minValue = 0;
    uint64_t maxValue = 0;
    std::array<uint64_t, kBuckets> buckets{};

    /** Bucket index holding @p v. */
    static unsigned bucketOf(uint64_t v);
    /** Smallest value belonging to bucket @p b. */
    static uint64_t bucketLow(unsigned b);
    /** Largest value belonging to bucket @p b. */
    static uint64_t bucketHigh(unsigned b);

    void
    record(uint64_t v)
    {
        if (count == 0) {
            minValue = maxValue = v;
        } else {
            if (v < minValue)
                minValue = v;
            if (v > maxValue)
                maxValue = v;
        }
        ++count;
        sum += v;
        ++buckets[bucketOf(v)];
    }

    void merge(const Histogram &other);

    double mean() const
    { return count ? static_cast<double>(sum) /
                         static_cast<double>(count) : 0.0; }

    /**
     * Upper bound of the bucket containing the @p p quantile
     * (0 < p <= 1), i.e. an upper estimate of the p-th percentile.
     */
    uint64_t percentileUpperBound(double p) const;
};

class StatScope;

/** A named collection of counters, accumulators, and histograms. */
class StatSet
{
  public:
    /** Add @p delta to the counter named @p name (created on demand). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set the counter named @p name to @p value. */
    void set(const std::string &name, uint64_t value);

    /** Counter value, or 0 if never touched. */
    uint64_t get(const std::string &name) const;

    /** Record one sample into the accumulator named @p name. */
    void sample(const std::string &name, double value);

    /** Accumulator by name; returns an empty accumulator if absent. */
    Accumulator accum(const std::string &name) const;

    /** Record @p value into the histogram named @p name. */
    void hist(const std::string &name, uint64_t value);

    /**
     * Merge a locally-accumulated histogram into the one named
     * @p name (no-op when @p h is empty). Lets hot paths record into
     * a plain Histogram member and fold it in once at end of run.
     */
    void addHistogram(const std::string &name, const Histogram &h);

    /** Accumulator analogue of addHistogram() (no-op when empty). */
    void addAccum(const std::string &name, const Accumulator &acc);

    /** Histogram by name; returns an empty histogram if absent. */
    Histogram histogram(const std::string &name) const;

    /** Merge all counters, accumulators, and histograms from @p other. */
    void merge(const StatSet &other);

    /**
     * Merge @p other with every name rewritten to "prefix.name" —
     * e.g. mergeScoped("tile3", s) files s's "l1d.misses" under
     * "tile3.l1d.misses". Empty prefix degrades to merge().
     */
    void mergeScoped(const std::string &prefix, const StatSet &other);

    /**
     * A write-through proxy prefixing every name with "prefix.".
     * Scopes nest: scope("tile3").scope("l1d").inc("misses") touches
     * "tile3.l1d.misses" of this set.
     */
    StatScope scope(const std::string &prefix);

    /** Reset everything to zero. */
    void clear();

    /** Render all stats, one "name = value" line each. */
    std::string toString() const;

    /**
     * The whole set as a JSON object with "counters",
     * "accumulators", and "histograms" members. Histograms list only
     * occupied buckets as [low, high, count] triples.
     */
    std::string toJson(bool pretty = true) const;

    const std::map<std::string, uint64_t> &counters() const
    { return _counters; }
    const std::map<std::string, Accumulator> &accumulators() const
    { return _accums; }
    const std::map<std::string, Histogram> &histograms() const
    { return _hists; }

  private:
    std::map<std::string, uint64_t> _counters;
    std::map<std::string, Accumulator> _accums;
    std::map<std::string, Histogram> _hists;
};

/** Prefixing proxy returned by StatSet::scope(); see there. */
class StatScope
{
  public:
    StatScope(StatSet &set, std::string prefix)
        : _set(&set), _prefix(std::move(prefix)) {}

    void inc(const std::string &name, uint64_t delta = 1)
    { _set->inc(_prefix + "." + name, delta); }
    void set(const std::string &name, uint64_t value)
    { _set->set(_prefix + "." + name, value); }
    void sample(const std::string &name, double value)
    { _set->sample(_prefix + "." + name, value); }
    void hist(const std::string &name, uint64_t value)
    { _set->hist(_prefix + "." + name, value); }

    StatScope scope(const std::string &sub) const
    { return StatScope(*_set, _prefix + "." + sub); }

    const std::string &prefix() const { return _prefix; }

  private:
    StatSet *_set;
    std::string _prefix;
};

/**
 * Geometric mean of a sequence of positive values. Zero or negative
 * inputs are undefined for a geomean; they are warned about and
 * skipped rather than silently poisoning the result with -inf/NaN.
 */
double geomean(const double *values, size_t n);

} // namespace ash

#endif // ASH_COMMON_STATS_H
