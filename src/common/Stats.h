/**
 * @file
 * Lightweight named statistics used by every simulator component. A
 * StatSet owns scalar counters and averaging accumulators and can render
 * itself for debugging. Benches read individual stats by name.
 */

#ifndef ASH_COMMON_STATS_H
#define ASH_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>

namespace ash {

/** Accumulator tracking count/sum/min/max for a sampled quantity. */
struct Accumulator
{
    uint64_t count = 0;
    double sum = 0.0;
    double minValue = 0.0;
    double maxValue = 0.0;

    void
    sample(double v)
    {
        if (count == 0) {
            minValue = maxValue = v;
        } else {
            if (v < minValue)
                minValue = v;
            if (v > maxValue)
                maxValue = v;
        }
        ++count;
        sum += v;
    }

    double mean() const { return count ? sum / count : 0.0; }
};

/** A named collection of counters and accumulators. */
class StatSet
{
  public:
    /** Add @p delta to the counter named @p name (created on demand). */
    void inc(const std::string &name, uint64_t delta = 1);

    /** Set the counter named @p name to @p value. */
    void set(const std::string &name, uint64_t value);

    /** Counter value, or 0 if never touched. */
    uint64_t get(const std::string &name) const;

    /** Record one sample into the accumulator named @p name. */
    void sample(const std::string &name, double value);

    /** Accumulator by name; returns an empty accumulator if absent. */
    Accumulator accum(const std::string &name) const;

    /** Merge all counters and accumulators from @p other into this. */
    void merge(const StatSet &other);

    /** Reset everything to zero. */
    void clear();

    /** Render all stats, one "name = value" line each. */
    std::string toString() const;

    const std::map<std::string, uint64_t> &counters() const
    { return _counters; }
    const std::map<std::string, Accumulator> &accumulators() const
    { return _accums; }

  private:
    std::map<std::string, uint64_t> _counters;
    std::map<std::string, Accumulator> _accums;
};

/** Geometric mean of a sequence of positive values. */
double geomean(const double *values, size_t n);

} // namespace ash

#endif // ASH_COMMON_STATS_H
